// Query-server load bench (DESIGN.md §13): holds >=1000 concurrent TCP
// clients against one in-process QueryServer, fires bursts where every
// client has a query outstanding at once, and gates on p50/p99
// end-to-end latency (send -> done line read) plus exact answer counts.
//
// The burst shape is the point: with pool_sessions worker sessions and a
// handful of handler threads, a 1000-client burst exercises the whole
// admission path — kernel-buffered request lines, synchronous handler
// execution, per-solution streamed writes — rather than a polite
// one-at-a-time request loop. Counts (bindings, dones, errors) are
// exact, so any dropped or duplicated answer under load aborts the run.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "educe/engine.h"
#include "obs/histogram.h"
#include "server/server.h"

namespace educe {
namespace {

using bench::BenchJson;
using bench::Check;
using bench::Table;

constexpr uint32_t kClients = 1000;
constexpr uint32_t kDrivers = 8;
constexpr uint32_t kRounds = 3;   // measured burst rounds (plus 1 warmup)
constexpr uint32_t kRows = 25;    // solutions per query, verified exactly

// End-to-end latency bars for one query inside a 1000-client burst.
// Generous: they catch a serialization collapse (a held engine lock, a
// blocking accept, a per-binding flush stall), not scheduler noise.
constexpr uint64_t kP50BarNs = 2'000'000'000;   // 2 s
constexpr uint64_t kP99BarNs = 10'000'000'000;  // 10 s

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Fatal(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "FATAL: ");
  std::vfprintf(stderr, fmt, args);
  std::fprintf(stderr, "\n");
  va_end(args);
  std::abort();
}

/// Minimal blocking line client; a long receive timeout turns a server
/// stall into a loud failure instead of a hung bench.
class Client {
 public:
  ~Client() { Close(); }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval tv{60, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool SendLine(std::string line) {
    line += '\n';
    size_t off = 0;
    while (off < line.size()) {
      const ssize_t n =
          ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    while (true) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buf_.clear();
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

std::string ItemFacts(uint32_t n) {
  std::string out;
  for (uint32_t i = 0; i < n; ++i) {
    out += "item(" + std::to_string(i) + ", " + std::to_string(2 * i) + "). ";
  }
  return out;
}

/// Reads one response stream (bindings then done) off `client`, checking
/// seq ordering and the exact row count. Returns the done-read time.
uint64_t DrainResponse(Client* client, uint64_t client_index) {
  std::string line;
  uint64_t seq = 0;
  while (true) {
    if (!client->ReadLine(&line)) {
      Fatal("client %llu: connection died mid-response (after seq %llu)",
            (unsigned long long)client_index, (unsigned long long)seq);
    }
    if (line.find("\"type\":\"binding\"") != std::string::npos) {
      const std::string want = "\"seq\":" + std::to_string(seq);
      if (line.find(want) == std::string::npos) {
        Fatal("client %llu: out-of-order binding, wanted %s in: %s",
              (unsigned long long)client_index, want.c_str(), line.c_str());
      }
      ++seq;
      continue;
    }
    if (line.find("\"type\":\"done\"") != std::string::npos) {
      const std::string want = "\"count\":" + std::to_string(kRows);
      if (seq != kRows || line.find(want) == std::string::npos) {
        Fatal("client %llu: done after %llu bindings, line: %s",
              (unsigned long long)client_index, (unsigned long long)seq,
              line.c_str());
      }
      return NowNs();
    }
    Fatal("client %llu: unexpected line: %s", (unsigned long long)client_index,
          line.c_str());
  }
}

/// One burst: every driver fires a query on each of its clients, then
/// drains the responses, recording send->done latency per query.
void RunBurst(std::vector<Client>& clients, obs::Histogram* merged,
              bool record) {
  std::vector<obs::Histogram> per_driver(kDrivers);
  std::vector<std::thread> drivers;
  const uint32_t per = kClients / kDrivers;
  for (uint32_t d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      const uint32_t begin = d * per;
      const uint32_t end = (d + 1 == kDrivers) ? kClients : begin + per;
      std::vector<uint64_t> sent_at(end - begin);
      for (uint32_t i = begin; i < end; ++i) {
        sent_at[i - begin] = NowNs();
        if (!clients[i].SendLine(
                R"json({"op":"query","goal":"item(X, Y)","id":1})json")) {
          Fatal("client %u: send failed", i);
        }
      }
      for (uint32_t i = begin; i < end; ++i) {
        const uint64_t done_at = DrainResponse(&clients[i], i);
        per_driver[d].Record(done_at - sent_at[i - begin]);
      }
    });
  }
  for (auto& t : drivers) t.join();
  if (record) {
    for (const auto& h : per_driver) merged->Merge(h);
  }
}

int Main() {
  // 1000 client sockets + 1000 server-side conns + epoll/event fds.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < 4096 && nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max < 4096 ? nofile.rlim_max : 4096;
    ::setrlimit(RLIMIT_NOFILE, &nofile);
    ::getrlimit(RLIMIT_NOFILE, &nofile);
  }
  if (nofile.rlim_cur < 2200) {
    Fatal("RLIMIT_NOFILE %llu too low for %u clients (need ~2200)",
          (unsigned long long)nofile.rlim_cur, kClients);
  }

  Engine engine;
  Check(engine.DeclareRelation("item", 2), "declare item");
  Check(engine.StoreFactsExternal(ItemFacts(kRows)), "item facts");

  server::ServerOptions options;
  options.pool_sessions = 4;
  options.handler_threads = 4;
  options.max_connections = 2048;
  // A full burst queues ~kClients/pool queries behind each session;
  // queueing is the scenario under test, so never shed on wait.
  options.queue_wait_ms = 60000;
  server::QueryServer server(&engine, options);
  Check(server.Start(), "server start");
  const uint16_t port = server.port();
  std::printf("bench_server: %u clients, %u drivers, pool %u, port %u\n",
              kClients, kDrivers, options.pool_sessions, port);

  // --- Phase 1: connect everyone, prove liveness with a ping wave ---------
  base::Stopwatch connect_watch;
  std::vector<Client> clients(kClients);
  {
    std::vector<std::thread> drivers;
    const uint32_t per = kClients / kDrivers;
    for (uint32_t d = 0; d < kDrivers; ++d) {
      drivers.emplace_back([&, d] {
        const uint32_t begin = d * per;
        const uint32_t end = (d + 1 == kDrivers) ? kClients : begin + per;
        for (uint32_t i = begin; i < end; ++i) {
          if (!clients[i].Connect(port)) Fatal("client %u: connect failed", i);
          if (!clients[i].SendLine(R"json({"op":"ping"})json")) {
            Fatal("client %u: ping send failed", i);
          }
        }
        std::string line;
        for (uint32_t i = begin; i < end; ++i) {
          if (!clients[i].ReadLine(&line) ||
              line.find("pong") == std::string::npos) {
            Fatal("client %u: no pong: %s", i, line.c_str());
          }
        }
      });
    }
    for (auto& t : drivers) t.join();
  }
  const double connect_seconds = connect_watch.ElapsedSeconds();

  // --- Phase 2: warmup burst (compiles the goal in every session) ---------
  obs::Histogram latency;
  RunBurst(clients, &latency, /*record=*/false);

  // --- Phase 3: measured bursts -------------------------------------------
  base::Stopwatch burst_watch;
  for (uint32_t round = 0; round < kRounds; ++round) {
    RunBurst(clients, &latency, /*record=*/true);
  }
  const double burst_seconds = burst_watch.ElapsedSeconds();

  for (auto& client : clients) client.Close();

  // --- Checks: exact server-side accounting -------------------------------
  // A client reads its "done" line a moment before the handler's RAII
  // returns the session and bumps queries_ok, so give the server a beat
  // to settle before demanding exact counts.
  const uint64_t expected_queries =
      static_cast<uint64_t>(kClients) * (kRounds + 1);
  for (int spin = 0; spin < 1000; ++spin) {
    if (server.pool()->idle() == options.pool_sessions &&
        server.stats().queries_ok == expected_queries) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const server::QueryServer::Stats stats = server.stats();
  if (stats.queries_ok != expected_queries) {
    Fatal("queries_ok %llu != %llu", (unsigned long long)stats.queries_ok,
          (unsigned long long)expected_queries);
  }
  if (stats.queries_error != 0 || stats.queries_aborted != 0) {
    Fatal("server saw %llu errors, %llu aborts",
          (unsigned long long)stats.queries_error,
          (unsigned long long)stats.queries_aborted);
  }
  if (stats.bindings_sent != expected_queries * kRows) {
    Fatal("bindings_sent %llu != %llu",
          (unsigned long long)stats.bindings_sent,
          (unsigned long long)(expected_queries * kRows));
  }
  const uint64_t shed_pressure = server.admission()->shed_pressure();
  const uint64_t shed_timeout = server.admission()->shed_timeout();
  const uint64_t shed = shed_pressure + shed_timeout;
  if (shed != 0) {
    Fatal("%llu queries shed with an idle-capable pool",
          (unsigned long long)shed);
  }
  const uint64_t pool_acquired = server.pool()->acquired();
  const uint64_t pool_waited = server.pool()->waited();
  if (server.pool()->idle() != options.pool_sessions) {
    Fatal("pool leaked: %u idle of %u", server.pool()->idle(),
          options.pool_sessions);
  }

  server.Stop();
  if (engine.active_sessions() != 0) {
    Fatal("engine still has %llu sessions after Stop",
          (unsigned long long)engine.active_sessions());
  }

  const uint64_t measured = static_cast<uint64_t>(kClients) * kRounds;
  const double queries_per_s = measured / burst_seconds;
  Table table("Query server under a 1000-client burst");
  table.Header({"phase", "wall ms", "queries", "p50 ms", "p99 ms", "max ms"});
  table.Row({"connect+ping", bench::Ms(connect_seconds),
             bench::Num(kClients), "-", "-", "-"});
  table.Row({"bursts", bench::Ms(burst_seconds), bench::Num(measured),
             bench::Ms(latency.Percentile(50) * 1e-9),
             bench::Ms(latency.Percentile(99) * 1e-9),
             bench::Ms(latency.max() * 1e-9)});
  table.Print();
  std::printf("\nthroughput: %.0f queries/s (pool %u, %u handler threads), "
              "pool waited %llu of %llu acquires\n",
              queries_per_s, options.pool_sessions, options.handler_threads,
              (unsigned long long)pool_waited,
              (unsigned long long)pool_acquired);

  BenchJson json;
  json.Add("bench", std::string("server"));
  json.AddHostCores();
  json.AddToolchain();
  json.Add("client_count", static_cast<uint64_t>(kClients));
  json.Add("burst_rounds", static_cast<uint64_t>(kRounds));
  json.AddHistogram("query", latency);
  json.Add("binding_rows", stats.bindings_sent);
  json.Add("error_count", stats.queries_error);
  json.Add("aborted_count", stats.queries_aborted);
  json.Add("shed_pressure", shed_pressure);
  json.Add("shed_timeout", shed_timeout);
  json.Add("pool_waited", pool_waited);
  json.Add("connect_ms", connect_seconds * 1e3);
  json.Add("burst_ms", burst_seconds * 1e3);
  json.Add("queries_per_s", queries_per_s);
  json.Print();

  // --- Bars ---------------------------------------------------------------
  if (latency.Percentile(50) > kP50BarNs) {
    Fatal("p50 %.1f ms over the %.0f ms bar", latency.Percentile(50) * 1e-6,
          kP50BarNs * 1e-6);
  }
  if (latency.Percentile(99) > kP99BarNs) {
    Fatal("p99 %.1f ms over the %.0f ms bar", latency.Percentile(99) * 1e-6,
          kP99BarNs * 1e-6);
  }
  std::printf("bench_server: OK\n");
  return 0;
}

}  // namespace
}  // namespace educe

int main() { return educe::Main(); }
