// Recursive closure at scale (DESIGN.md §15): one million edge/2 facts
// in the EDB, transitive closure computed bottom-up (the semi-naive
// Datalog evaluator over the rel executor) and top-down (the WAM), on
// the same engine, same rules, same facts.
//
// The graph is 99,960 ten-edge chains plus one 2x134 ladder (1,000,000
// edges exactly; 5,524,667 closure tuples). Chains make the closure
// size linear in the edge count; the ladder adds a component with real
// fan-out so the join planner sees shared variables on both sides —
// and, having multiple derivations per pair, it forces the set-vs-bag
// comparison discipline below (WAM answers are deduplicated; all bars
// compare *sets*, matching the bottom-up engine's set semantics).
//
// Top-down is measured per-source over a 2,000-node sample and
// extrapolated. Full-graph top-down enumeration is intrinsically tens
// of minutes (measured 55.3 s bottom-up vs >2,600 s for one unbound
// WAM query — that gap is this subsystem's reason to exist), so the
// full leg only runs with EDUCE_CLOSURE_FULL=1 in the environment; CI
// runs the sampled mode. The extrapolation is a *lower bound* on the
// true top-down time: the sample covers 181 whole chains (per-chain
// cost is uniform across chains) and excludes the ladder sources,
// whose reach sets are the largest in the graph.
//
// Correctness does not ride on the sample: the full 5.5M-tuple
// bottom-up answer is checked for set equality against an independent
// plain-C++ BFS closure of the edge list, and the sampled WAM answers
// must equal their slice of it exactly.
//
// Bars (abort on miss):
//   - the bottom-up solution set equals the BFS reference closure
//     (all 5,524,667 tuples, compared as packed u64 pairs);
//   - the sampled top-down answers equal their slice of the closure;
//   - bottom-up answers the full closure >= 10x faster than the
//     (lower-bound extrapolated, or measured under
//     EDUCE_CLOSURE_FULL=1) top-down time;
//   - the magic-set bound query derives strictly fewer tuples than the
//     unbound evaluation (demand transformation actually pruned);
//   - the bound answers equal the bound slice of the full closure.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/stopwatch.h"
#include "bench/bench_util.h"
#include "educe/engine.h"
#include "workloads/graph.h"

namespace educe {
namespace {

using bench::BenchJson;
using bench::Check;
using bench::CheckResult;
using bench::Ms;
using bench::Num;
using bench::Ratio;
using bench::Table;
using workloads::GraphWorkload;

constexpr uint64_t kChainLen = 10;     // edges per chain component
constexpr uint64_t kChains = 99960;    // chain components
constexpr uint64_t kLadderCols = 134;  // 2xN ladder: 3N-2 = 400 edges
constexpr uint64_t kTotalEdges = kChains * kChainLen + 3 * kLadderCols - 2;
static_assert(kTotalEdges == 1000000, "graph must sum to one million edges");

constexpr int64_t kNumNodes =
    static_cast<int64_t>(kChains * (kChainLen + 1) + 2 * kLadderCols);

// Per-source sample: 181 whole chains. Large enough to average out
// per-query setup noise, small enough to keep the leg in seconds.
constexpr int64_t kSampleSources = 2000;

uint64_t Pack(int64_t x, int64_t y) {
  return (static_cast<uint64_t>(x) << 32) | static_cast<uint64_t>(y);
}

std::vector<GraphWorkload::Edge> BuildGraph() {
  std::vector<GraphWorkload::Edge> edges;
  edges.reserve(kTotalEdges);
  for (uint64_t k = 0; k < kChains; ++k) {
    const int64_t base = static_cast<int64_t>(k * (kChainLen + 1));
    for (uint64_t i = 0; i < kChainLen; ++i) {
      edges.emplace_back(base + static_cast<int64_t>(i),
                         base + static_cast<int64_t>(i) + 1);
    }
  }
  const int64_t offset = static_cast<int64_t>(kChains * (kChainLen + 1));
  for (const auto& e : GraphWorkload::Grid(2, kLadderCols)) {
    edges.emplace_back(e.first + offset, e.second + offset);
  }
  return edges;
}

// Independent reference: plain BFS/DFS transitive closure over the edge
// list, no engine code involved. ~5.5M pairs in well under a second.
std::vector<uint64_t> ReferenceClosure(
    const std::vector<GraphWorkload::Edge>& edges) {
  std::vector<std::vector<int32_t>> adj(static_cast<size_t>(kNumNodes));
  for (const auto& e : edges) {
    adj[static_cast<size_t>(e.first)].push_back(
        static_cast<int32_t>(e.second));
  }
  std::vector<uint64_t> closure;
  std::vector<int32_t> stamp(static_cast<size_t>(kNumNodes), -1);
  std::vector<int32_t> stack;
  for (int64_t src = 0; src < kNumNodes; ++src) {
    stack.clear();
    for (int32_t next : adj[static_cast<size_t>(src)]) {
      if (stamp[static_cast<size_t>(next)] != src) {
        stamp[static_cast<size_t>(next)] = static_cast<int32_t>(src);
        stack.push_back(next);
      }
    }
    while (!stack.empty()) {
      const int32_t node = stack.back();
      stack.pop_back();
      closure.push_back(Pack(src, node));
      for (int32_t next : adj[static_cast<size_t>(node)]) {
        if (stamp[static_cast<size_t>(next)] != src) {
          stamp[static_cast<size_t>(next)] = static_cast<int32_t>(src);
          stack.push_back(next);
        }
      }
    }
  }
  std::sort(closure.begin(), closure.end());
  return closure;
}

int64_t AstInt(const term::AstPtr& ast) {
  if (ast == nullptr || ast->kind != term::Ast::Kind::kInt) {
    std::fprintf(stderr, "FATAL non-integer binding in closure answer\n");
    std::abort();
  }
  return ast->int_value;
}

void SortUnique(std::vector<uint64_t>* pairs) {
  std::sort(pairs->begin(), pairs->end());
  pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
}

int Main() {
  const bool full_top_down = std::getenv("EDUCE_CLOSURE_FULL") != nullptr;
  std::printf("Building graph: %llu chains x %llu edges + 2x%llu ladder "
              "= %llu edges\n",
              static_cast<unsigned long long>(kChains),
              static_cast<unsigned long long>(kChainLen),
              static_cast<unsigned long long>(kLadderCols),
              static_cast<unsigned long long>(kTotalEdges));
  const std::vector<GraphWorkload::Edge> edges = BuildGraph();
  const std::vector<uint64_t> reference = ReferenceClosure(edges);
  std::printf("Reference closure: %zu tuples (plain BFS)\n", reference.size());

  EngineOptions options;
  options.datalog = true;
  Engine engine(options);

  base::Stopwatch setup;
  Check(GraphWorkload::StoreEdges(&engine, "edge", edges), "store edges");
  Check(engine.Consult("path(X, Y) :- edge(X, Y).\n"
                       "path(X, Y) :- edge(X, Z), path(Z, Y).\n"),
        "consult closure rules");
  const double setup_s = setup.ElapsedSeconds();
  std::printf("Setup (StoreEdges + consult): %s ms\n", Ms(setup_s).c_str());
  std::fflush(stdout);

  DatalogManager* manager = engine.datalog_manager();

  // --- bottom-up: one unbound query answers the whole closure ---------------
  manager->SetStrategy("path", 2, DatalogStrategy::kBottomUp);
  const DatalogStats dl0 = engine.Stats().datalog;
  std::vector<uint64_t> bottom_up_pairs;
  bottom_up_pairs.reserve(reference.size());
  base::Stopwatch bu;
  {
    auto solutions = CheckResult(engine.Query("path(X, Y)"), "bottom-up query");
    while (CheckResult(solutions->Next(), "bottom-up next")) {
      bottom_up_pairs.push_back(Pack(AstInt(solutions->BindingAst("X")),
                                     AstInt(solutions->BindingAst("Y"))));
    }
  }
  const double bottom_up_s = bu.ElapsedSeconds();
  const DatalogStats dl1 = engine.Stats().datalog;
  const uint64_t tuples_unbound = dl1.tuples_derived - dl0.tuples_derived;
  const uint64_t iterations_unbound = dl1.iterations - dl0.iterations;
  std::printf("Bottom-up: %zu tuples in %s ms (%llu derived, %llu rounds)\n",
              bottom_up_pairs.size(), Ms(bottom_up_s).c_str(),
              static_cast<unsigned long long>(tuples_unbound),
              static_cast<unsigned long long>(iterations_unbound));
  std::fflush(stdout);

  // --- bottom-up, bound: the magic-set rewrite prunes to the demand set -----
  std::vector<uint64_t> bound_pairs;
  base::Stopwatch magic;
  {
    auto solutions = CheckResult(engine.Query("path(0, Y)"), "bound query");
    while (CheckResult(solutions->Next(), "bound next")) {
      bound_pairs.push_back(Pack(0, AstInt(solutions->BindingAst("Y"))));
    }
  }
  const double magic_s = magic.ElapsedSeconds();
  const DatalogStats dl2 = engine.Stats().datalog;
  const uint64_t tuples_bound = dl2.tuples_derived - dl1.tuples_derived;
  std::printf("Magic bound: %zu answers in %s ms (%llu derived)\n",
              bound_pairs.size(), Ms(magic_s).c_str(),
              static_cast<unsigned long long>(tuples_bound));
  std::fflush(stdout);

  // --- top-down, per-source over the sample: the WAM pays query setup,
  // clause-store selections and solution surfacing per call ------------------
  manager->SetStrategy("path", 2, DatalogStrategy::kWam);
  const uint64_t decodes0 = engine.Stats().loader.clauses_decoded;
  std::vector<uint64_t> sample_pairs;
  base::Stopwatch per_call;
  std::string goal;
  for (int64_t src = 0; src < kSampleSources; ++src) {
    goal = "path(" + std::to_string(src) + ", Y)";
    auto solutions = CheckResult(engine.Query(goal), "per-source query");
    while (CheckResult(solutions->Next(), "per-source next")) {
      sample_pairs.push_back(Pack(src, AstInt(solutions->BindingAst("Y"))));
    }
  }
  const double per_call_s = per_call.ElapsedSeconds();
  const uint64_t sample_decodes =
      engine.Stats().loader.clauses_decoded - decodes0;
  const double top_down_est_s =
      per_call_s * static_cast<double>(kNumNodes) /
      static_cast<double>(kSampleSources);
  std::printf("Top-down per-source: %zu answers over %lld queries in %s ms "
              "(>= %s ms extrapolated to all %lld sources)\n",
              sample_pairs.size(), static_cast<long long>(kSampleSources),
              Ms(per_call_s).c_str(), Ms(top_down_est_s).c_str(),
              static_cast<long long>(kNumNodes));
  std::fflush(stdout);

  // --- top-down, full unbound enumeration (EDUCE_CLOSURE_FULL=1 only) -------
  double top_down_s = 0.0;
  if (full_top_down) {
    std::vector<uint64_t> top_down_pairs;
    top_down_pairs.reserve(reference.size() + reference.size() / 8);
    base::Stopwatch td;
    auto solutions = CheckResult(engine.Query("path(X, Y)"), "top-down query");
    while (CheckResult(solutions->Next(), "top-down next")) {
      top_down_pairs.push_back(Pack(AstInt(solutions->BindingAst("X")),
                                    AstInt(solutions->BindingAst("Y"))));
    }
    top_down_s = td.ElapsedSeconds();
    const uint64_t derivations = top_down_pairs.size();
    SortUnique(&top_down_pairs);
    std::printf("Top-down: %zu tuples in %s ms (one unbound query, %llu "
                "derivations)\n",
                top_down_pairs.size(), Ms(top_down_s).c_str(),
                static_cast<unsigned long long>(derivations));
    std::fflush(stdout);
    if (top_down_pairs != reference) {
      std::fprintf(stderr, "FATAL top-down closure differs from reference\n");
      return 1;
    }
  }

  // --- bars ------------------------------------------------------------------
  std::sort(bottom_up_pairs.begin(), bottom_up_pairs.end());
  if (bottom_up_pairs != reference) {
    std::fprintf(stderr,
                 "FATAL bottom-up closure differs from reference: "
                 "%zu vs %zu tuples\n",
                 bottom_up_pairs.size(), reference.size());
    return 1;
  }
  std::vector<uint64_t> expected_bound;
  std::vector<uint64_t> expected_sample;
  for (uint64_t pair : reference) {
    if ((pair >> 32) == 0) expected_bound.push_back(pair);
    if ((pair >> 32) < static_cast<uint64_t>(kSampleSources)) {
      expected_sample.push_back(pair);
    }
  }
  std::sort(bound_pairs.begin(), bound_pairs.end());
  if (bound_pairs != expected_bound) {
    std::fprintf(stderr, "FATAL bound answers differ from closure slice\n");
    return 1;
  }
  SortUnique(&sample_pairs);
  if (sample_pairs != expected_sample) {
    std::fprintf(stderr, "FATAL sampled answers differ from closure slice\n");
    return 1;
  }
  if (tuples_bound >= tuples_unbound) {
    std::fprintf(stderr,
                 "FATAL magic rewrite did not prune: bound %llu >= full %llu\n",
                 static_cast<unsigned long long>(tuples_bound),
                 static_cast<unsigned long long>(tuples_unbound));
    return 1;
  }
  if (dl2.magic_rewrites < 1) {
    std::fprintf(stderr, "FATAL bound query compiled without magic rewrite\n");
    return 1;
  }
  const edb::ClauseStoreStats store_stats = engine.Stats().clause_store;
  if (store_stats.bulk_fact_scans < 1 ||
      store_stats.bulk_fact_rows < kTotalEdges) {
    std::fprintf(stderr, "FATAL bulk fact scan did not feed the EDB\n");
    return 1;
  }
  const double top_down_bar_s = full_top_down ? top_down_s : top_down_est_s;
  const double speedup = top_down_bar_s / bottom_up_s;
  if (speedup < 10.0) {
    std::fprintf(stderr, "FATAL bottom-up speedup %.1fx below the 10x bar\n",
                 speedup);
    return 1;
  }

  Table table("Transitive closure, 1,000,000 edges (paper-style)");
  table.Header({"strategy", "time (ms)", "tuples", "notes"});
  table.Row({"top-down (WAM, per-source)", Ms(per_call_s),
             Num(sample_pairs.size()),
             Num(static_cast<uint64_t>(kSampleSources)) + " of " +
                 Num(static_cast<uint64_t>(kNumNodes)) + " sources"});
  if (full_top_down) {
    table.Row({"top-down (WAM, unbound)", Ms(top_down_s),
               Num(reference.size()), "one query, full enumeration"});
  } else {
    table.Row({"top-down (extrapolated)", Ms(top_down_est_s),
               Num(reference.size()), "lower bound, all sources"});
  }
  table.Row({"bottom-up (semi-naive)", Ms(bottom_up_s),
             Num(bottom_up_pairs.size()),
             Ratio(top_down_bar_s, bottom_up_s) + " vs top-down"});
  table.Row({"bottom-up + magic (path(0,Y))", Ms(magic_s),
             Num(bound_pairs.size()),
             Num(tuples_bound) + " derived vs " + Num(tuples_unbound)});
  table.Print();

  BenchJson json;
  json.Add("bench", std::string("closure"));
  json.AddHostCores();
  json.AddToolchain();
  json.Add("edges", kTotalEdges);
  json.Add("solutions", static_cast<uint64_t>(bottom_up_pairs.size()));
  json.Add("bound_solution_rows", static_cast<uint64_t>(bound_pairs.size()));
  json.Add("sample_solution_rows", static_cast<uint64_t>(sample_pairs.size()));
  json.Add("tuples_unbound_count", tuples_unbound);
  json.Add("tuples_bound_count", tuples_bound);
  json.Add("delta_iterations_count", iterations_unbound);
  json.Add("bulk_fact_rows", store_stats.bulk_fact_rows.load());
  json.Add("sample_decodes", sample_decodes);
  json.Add("setup_ms", setup_s * 1e3);
  json.Add("bottom_up_ms", bottom_up_s * 1e3);
  json.Add("magic_bound_ms", magic_s * 1e3);
  json.Add("top_down_sample_ms", per_call_s * 1e3);
  json.Add("top_down_est_ms", top_down_est_s * 1e3);
  if (full_top_down) json.Add("top_down_full_ms", top_down_s * 1e3);
  json.Add("speedup", speedup);
  json.Print();
  return 0;
}

}  // namespace
}  // namespace educe

int main() { return educe::Main(); }
