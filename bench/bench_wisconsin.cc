// Reproduces paper Table 2a/2b — the Wisconsin benchmark selections and
// joins Educe* ran to show its conventional-relational capabilities
// (§5.2): two 10000-tuple relations and one 1000-tuple relation.
//
//   Q1  1% selection over 10000 tuples (sequential scan)
//   Q2  10% selection over 10000 tuples (sequential scan)
//   Q3  select 1 tuple from 10000 (secondary index on unique2)
//   Q4  two-way join of two 10000-tuple relations with a selection
//   Q5  three-way join (10000 x 1000 x 10000) with selections
//
// As in the paper, each query runs in several formats (scan- vs
// index-based plans, nested-loop vs hash joins) and we report elapsed
// time plus the I/O frequencies of Table 2b: buffer accesses, pages read
// and pages written, for a cold first run and a warm second run.

#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "educe/engine.h"
#include "obs/profile.h"
#include "rel/exec.h"
#include "rel/wisconsin.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"

namespace educe {
namespace {

using bench::Check;
using bench::CheckResult;
using bench::Ms;
using bench::Num;
using bench::Table;
using rel::MakeFilter;
using rel::MakeHashJoin;
using rel::MakeIndexNestedLoopJoin;
using rel::MakeIndexScan;
using rel::MakeSeqScan;
using rel::Tuple;

constexpr int64_t kBig = 10000;
constexpr int64_t kSmall = 1000;

struct Fixture {
  storage::PagedFile file;
  storage::BufferPool pool{&file, 2048};  // tables fit: warm runs hit the pool
  rel::Database db{&pool};
  rel::Table* tenk1 = nullptr;
  rel::Table* tenk2 = nullptr;
  rel::Table* onek = nullptr;

  Fixture() {
    tenk1 = CheckResult(rel::WisconsinGenerator::Build(&db, "tenk1", kBig, 1),
                        "tenk1");
    tenk2 = CheckResult(rel::WisconsinGenerator::Build(&db, "tenk2", kBig, 2),
                        "tenk2");
    onek = CheckResult(rel::WisconsinGenerator::Build(&db, "onek", kSmall, 3),
                       "onek");
  }
};

// Column positions in the Wisconsin schema.
constexpr int kUnique1 = 0;
constexpr int kUnique2 = 1;
constexpr int kOnePercent = 6;
constexpr int kTenPercent = 7;

struct QueryResult {
  uint64_t rows;
  double seconds;
  uint64_t buffer_accesses;
  uint64_t pages_read;
  uint64_t pages_written;
};

QueryResult Run(Fixture* fx,
                const std::function<std::unique_ptr<rel::RowSource>()>& plan) {
  fx->pool.ResetStats();
  fx->file.ResetStats();
  base::Stopwatch watch;
  auto rows = CheckResult(plan()->Collect(), "query");
  QueryResult out;
  out.rows = rows.size();
  out.seconds = watch.ElapsedSeconds();
  out.buffer_accesses = fx->pool.stats().hits + fx->pool.stats().misses;
  out.pages_read = fx->file.stats().pages_read;
  out.pages_written = fx->file.stats().pages_written;
  return out;
}

// The same selections through the WAM (DESIGN.md §14): a 10000-tuple
// wisc/4 relation consulted as compiled in-memory facts, probed with
// unbound-scan goals so every call backtracks down the full try chain.
// The warm execute_ns split is then almost pure emulator dispatch — the
// number the threaded/fused dispatch work moves.
int WamSection(bench::BenchJson* json) {
  std::string facts;
  facts.reserve(1u << 19);
  constexpr int kRows = 10000;
  for (int i = 0; i < kRows; ++i) {
    // unique1 is a permutation (7001 is prime, coprime to 10000); the
    // percent columns derive from it as in the Wisconsin generator.
    const int unique1 = static_cast<int>((static_cast<int64_t>(i) * 7001) %
                                         kRows);
    facts += "wisc(" + std::to_string(unique1) + ", " + std::to_string(i) +
             ", " + std::to_string(unique1 % 100) + ", " +
             std::to_string(unique1 % 10) + ").\n";
  }
  Engine engine;
  Check(engine.Consult(facts), "wisc consult");
  engine.SetProfiling(true);

  struct WamQuery {
    const char* id;
    const char* goal;
    uint64_t expect_rows;
  };
  const WamQuery queries[] = {
      {"W1 (1% sel)", "wisc(U1, U2, 50, T)", 100},
      {"W2 (10% sel)", "wisc(U1, U2, P, 5)", 1000},
      {"W3 (full scan)", "wisc(U1, U2, P, T)", kRows},
  };

  Table table("Wisconsin selections through the WAM (unbound scans over "
              "compiled wisc/4)");
  table.Header({"query", "rows", "warm p50", "warm p95",
                "execute p50 (ms)", "instructions"});
  int index = 0;
  for (const WamQuery& query : queries) {
    // First run pays compilation/linking of the 10000-clause procedure;
    // warm runs execute cached linked code.
    if (CheckResult(engine.CountSolutions(query.goal), query.id) !=
        query.expect_rows) {
      std::fprintf(stderr, "FATAL %s: wrong warm-up row count\n", query.id);
      return 1;
    }
    constexpr int kWarmRuns = 9;
    obs::Histogram total_ns;
    obs::Histogram execute_ns;
    uint64_t instructions = 0;
    for (int i = 0; i < kWarmRuns; ++i) {
      const uint64_t rows =
          CheckResult(engine.CountSolutions(query.goal), query.id);
      if (rows != query.expect_rows) {
        std::fprintf(stderr, "FATAL %s: expected %llu rows, got %llu\n",
                     query.id,
                     static_cast<unsigned long long>(query.expect_rows),
                     static_cast<unsigned long long>(rows));
        return 1;
      }
      const auto profiles = engine.RecentProfiles();
      if (profiles.empty()) {
        std::fprintf(stderr, "FATAL %s: no query profile\n", query.id);
        return 1;
      }
      const obs::QueryProfile& p = profiles.back();
      total_ns.Record(p.total_ns);
      execute_ns.Record(p.execute_ns);
      instructions = p.instructions;
    }
    table.Row({query.id, Num(query.expect_rows),
               Ms(total_ns.Percentile(50) * 1e-9),
               Ms(total_ns.Percentile(95) * 1e-9),
               Ms(execute_ns.Percentile(50) * 1e-9), Num(instructions)});
    const std::string prefix = "wam_w" + std::to_string(++index);
    json->Add(prefix + "_rows", query.expect_rows);
    json->Add(prefix + "_warm_ms", total_ns.Percentile(50) * 1e-6);
    json->Add(prefix + "_warm_execute_ms", execute_ns.Percentile(50) * 1e-6);
    json->AddHistogram(prefix + "_execute", execute_ns);
  }
  table.Print();
  return 0;
}

int Main() {
  Fixture fx;

  struct Query {
    const char* id;
    const char* format;
    std::function<std::unique_ptr<rel::RowSource>()> plan;
    uint64_t expect_rows;
  };

  rel::Table* tenk1 = fx.tenk1;
  rel::Table* tenk2 = fx.tenk2;
  rel::Table* onek = fx.onek;

  const std::vector<Query> queries = {
      {"Q1 (1% sel)", "seq scan",
       [=] {
         return MakeFilter(MakeSeqScan(tenk1), [](const Tuple& t) {
           return std::get<int64_t>(t[kOnePercent]) == 50;
         });
       },
       100},
      {"Q2 (10% sel)", "seq scan",
       [=] {
         return MakeFilter(MakeSeqScan(tenk1), [](const Tuple& t) {
           return std::get<int64_t>(t[kTenPercent]) == 5;
         });
       },
       1000},
      {"Q3 (1 tuple)", "index unique2",
       [=] { return MakeIndexScan(tenk1, kUnique2, int64_t{2001}); },
       1},
      {"Q3 (1 tuple)", "seq scan",
       [=] {
         return MakeFilter(MakeSeqScan(tenk1), [](const Tuple& t) {
           return std::get<int64_t>(t[kUnique2]) == 2001;
         });
       },
       1},
      // JoinAselB: tenk1 join (10% of tenk2) on unique1.
      {"Q4 (2-way join)", "hash join",
       [=] {
         auto sel = MakeFilter(MakeSeqScan(tenk2), [](const Tuple& t) {
           return std::get<int64_t>(t[kUnique2]) < 1000;
         });
         return MakeHashJoin(std::move(sel), MakeSeqScan(tenk1), kUnique1,
                             kUnique1);
       },
       1000},
      {"Q4 (2-way join)", "index nested loop",
       [=] {
         // The tuple-at-a-time plan a Prolog-style evaluator produces:
         // the selection drives an index probe per qualifying row.
         auto sel = MakeFilter(MakeSeqScan(tenk2), [](const Tuple& t) {
           return std::get<int64_t>(t[kUnique2]) < 1000;
         });
         return MakeIndexNestedLoopJoin(std::move(sel), tenk1, kUnique1,
                                        kUnique1);
       },
       1000},
      // Three-way: sel(tenk1) x onek x sel(tenk2).
      {"Q5 (3-way join)", "hash joins",
       [=] {
         auto sel1 = MakeFilter(MakeSeqScan(tenk1), [](const Tuple& t) {
           return std::get<int64_t>(t[kUnique2]) < 1000;
         });
         auto sel2 = MakeFilter(MakeSeqScan(tenk2), [](const Tuple& t) {
           return std::get<int64_t>(t[kUnique2]) < 1000;
         });
         auto join1 = MakeHashJoin(std::move(sel1), MakeSeqScan(onek),
                                   kUnique1, kUnique1);
         // join1 output: tenk1 row ++ onek row; join on onek.unique1.
         return MakeHashJoin(std::move(join1), std::move(sel2),
                             16 + kUnique1, kUnique1);
       },
       0 /* computed below */},
  };

  Table t2a("Table 2a: Wisconsin times (ms; 10000-tuple relations)");
  t2a.Header({"query", "format", "rows", "cold run", "warm p50", "warm p95"});
  Table t2b("Table 2b: Wisconsin I/O frequencies (cold run)");
  t2b.Header({"query", "format", "buffer acc", "pages read", "pages written",
              "buffer acc (warm)", "pages read (warm)"});

  bench::BenchJson json;
  json.Add("bench", std::string("wisconsin"));
  json.AddHostCores();
  json.AddToolchain();
  int query_index = 0;
  for (const Query& query : queries) {
    // Cold: empty buffer pool.
    Check(fx.pool.Invalidate(), "invalidate");
    const QueryResult cold = Run(&fx, query.plan);
    // Warm: repeat enough times for percentiles; the log-bucketed
    // histogram makes the p50/p95 spread visible where a single warm
    // sample hid scheduler noise.
    constexpr int kWarmRuns = 9;
    obs::Histogram warm_ns;
    QueryResult warm{};
    for (int i = 0; i < kWarmRuns; ++i) {
      warm = Run(&fx, query.plan);
      warm_ns.Record(static_cast<uint64_t>(warm.seconds * 1e9));
    }
    if (query.expect_rows != 0 && cold.rows != query.expect_rows) {
      std::fprintf(stderr, "FATAL %s: expected %llu rows, got %llu\n",
                   query.id,
                   static_cast<unsigned long long>(query.expect_rows),
                   static_cast<unsigned long long>(cold.rows));
      return 1;
    }
    t2a.Row({query.id, query.format, Num(cold.rows), Ms(cold.seconds),
             Ms(warm_ns.Percentile(50) * 1e-9),
             Ms(warm_ns.Percentile(95) * 1e-9)});
    t2b.Row({query.id, query.format, Num(cold.buffer_accesses),
             Num(cold.pages_read), Num(cold.pages_written),
             Num(warm.buffer_accesses), Num(warm.pages_read)});
    const std::string prefix = "q" + std::to_string(query_index++);
    json.Add(prefix + "_id", std::string(query.id) + " / " + query.format);
    json.Add(prefix + "_rows", cold.rows);
    json.Add(prefix + "_cold_ms", cold.seconds * 1e3);
    json.Add(prefix + "_warm_ms", warm_ns.Percentile(50) * 1e-6);
    json.AddHistogram(prefix + "_warm", warm_ns);
    json.Add(prefix + "_cold_pages_read", cold.pages_read);
    json.Add(prefix + "_warm_pages_read", warm.pages_read);
  }
  t2a.Print();
  t2b.Print();
  std::printf(
      "\nShape checks (paper §5.2): selection cost scales with selectivity; "
      "warm runs re-read far fewer pages; index point lookup beats the "
      "scan by orders of magnitude.\n");
  if (const int rc = WamSection(&json); rc != 0) return rc;
  json.Print();
  return 0;
}

}  // namespace
}  // namespace educe

int main() { return educe::Main(); }
