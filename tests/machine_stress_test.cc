#include "reader/parser.h"
// Stress and property tests for the emulator under memory pressure: the
// sliding GC (paper §3.3.2) must be semantically invisible — any program
// gives identical answers under a tiny collection threshold (GC invoked
// constantly) and under a threshold so large it never fires.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "educe/engine.h"

namespace educe {
namespace {

std::vector<std::string> RunWithGc(const std::string& program,
                                   const std::string& query,
                                   size_t gc_threshold,
                             uint64_t* gc_runs) {
  EngineOptions options;
  options.machine.gc_threshold_cells = gc_threshold;
  Engine engine(options);
  EXPECT_TRUE(engine.Consult(program).ok());
  std::vector<std::string> out;
  auto q = engine.Query(query);
  EXPECT_TRUE(q.ok()) << q.status();
  if (!q.ok()) return out;
  auto parsed = reader::ParseTerm(engine.dictionary(), query);
  while (out.size() < 500) {
    auto more = (*q)->Next();
    EXPECT_TRUE(more.ok()) << more.status();
    if (!more.ok() || !*more) break;
    std::string solution;
    for (const auto& [name, index] : parsed->var_names) {
      solution += name + "=" + (*q)->Binding(name) + " ";
    }
    out.push_back(std::move(solution));
  }
  *gc_runs = engine.Stats().machine.gc_runs;
  return out;
}

struct Scenario {
  const char* name;
  const char* program;
  const char* query;
};

class GcTransparencyTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(GcTransparencyTest, AnswersIdenticalUnderConstantCollection) {
  const Scenario& s = GetParam();
  uint64_t tiny_runs = 0, huge_runs = 0;
  const auto with_gc = RunWithGc(s.program, s.query, 2048, &tiny_runs);
  const auto without_gc = RunWithGc(s.program, s.query, 1u << 26, &huge_runs);
  EXPECT_EQ(with_gc, without_gc) << s.name;
  EXPECT_GT(tiny_runs, 0u) << s.name << ": GC never fired; weak test";
  EXPECT_EQ(huge_runs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, GcTransparencyTest,
    ::testing::Values(
        Scenario{"nrev",
                 R"(make(0, []) :- !.
                    make(N, [N|T]) :- M is N - 1, make(M, T).
                    nrev([], []).
                    nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).)",
                 "make(150, L), nrev(L, R), R = [F|_], F = 1"},
        Scenario{"backtracking-over-structures",
                 R"(make(0, []) :- !.
                    make(N, [s(N)|T]) :- M is N - 1, make(M, T).
                    pick(X, F) :- member(X, [1,2,3,4,5]),
                                  make(800, L), L = [F|_].)",
                 "pick(X, F)"},
        Scenario{"findall-under-pressure",
                 R"(gen(X) :- between(1, 1500, X).
                    blow(L) :- findall(f(X, [X]), gen(X), L).)",
                 "blow(L), length(L, N)"},
        Scenario{"deep-shared-tails",
                 R"(dup(0, _, []) :- !.
                    dup(N, E, [E|T]) :- M is N - 1, dup(M, E, T).
                    share(L) :- dup(900, shared(a, [1,2,3]), L).)",
                 "share(L), member(X, L)"}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(MachineStressTest, ManySequentialQueriesDoNotLeakState) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1). p(2). p(3).").ok());
  for (int i = 0; i < 300; ++i) {
    auto n = engine.CountSolutions("p(X), X > 1");
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 2u);
  }
}

TEST(MachineStressTest, WideFactsAndManyArgs) {
  Engine engine;
  // Arity near the supported limit, deterministic retrieval by arg 1.
  std::string program;
  for (int i = 0; i < 30; ++i) {
    program += "wide(k" + std::to_string(i);
    for (int a = 1; a < 20; ++a) {
      program += ", v" + std::to_string(i) + "_" + std::to_string(a);
    }
    program += ").\n";
  }
  ASSERT_TRUE(engine.Consult(program).ok());
  auto first = engine.First("wide(k7, A1, A2, A3, A4, A5, A6, A7, A8, A9, "
                            "A10, A11, A12, A13, A14, A15, A16, A17, A18, "
                            "A19)");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ((*first)["A19"], "v7_19");
}

TEST(MachineStressTest, RetractDuringBacktrackingIsSafe) {
  // The shared_ptr code retention must keep in-flight clauses alive when
  // the procedure is modified mid-derivation.
  Engine engine;
  ASSERT_TRUE(engine.Consult(R"(
    d(1). d(2). d(3). d(4).
    sweep(X) :- d(X), retract(d(X)).
  )").ok());
  auto n = engine.CountSolutions("sweep(X)");
  ASSERT_TRUE(n.ok()) << n.status();
  // Each solution retracts its own clause; the scan was linked before the
  // first retract, so all four original clauses are visited (logical
  // update view of the frozen procedure).
  EXPECT_EQ(*n, 4u);
  auto rest = engine.CountSolutions("d(X)");
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(*rest, 0u);
}

TEST(MachineStressTest, AssertDuringEnumerationSeesFrozenProcedure) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("e(1). e(2).").ok());
  // Asserting while enumerating must not loop forever: the running call
  // uses the linked code from call time (the paper's "freeze the
  // definition of the procedure ... avoiding possible inconsistencies").
  auto n = engine.CountSolutions("e(X), X < 10, assert(e(99))");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 2u);
  auto after = engine.CountSolutions("e(X)");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, 4u);  // 1, 2, 99, 99
}

TEST(MachineStressTest, RandomChurnAgreesAcrossGcSettings) {
  base::Rng rng(2024);
  for (int trial = 0; trial < 5; ++trial) {
    // Random list-manipulation pipeline.
    const int n = 20 + static_cast<int>(rng.Below(60));
    const std::string program = R"(
      make(0, []) :- !.
      make(N, [N|T]) :- M is N - 1, make(M, T).
      stepper([], A, A).
      stepper([H|T], A, R) :- H2 is H * 3 mod 17, stepper(T, [H2|A], R).
    )";
    const std::string query = "make(" + std::to_string(n) +
                              ", L), stepper(L, [], R), msort(R, S), "
                              "S = [First|_]";
    uint64_t runs_tiny = 0, runs_huge = 0;
    const auto a = RunWithGc(program, query, 1024, &runs_tiny);
    const auto b = RunWithGc(program, query, 1u << 26, &runs_huge);
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

}  // namespace
}  // namespace educe
