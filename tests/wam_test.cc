#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "reader/parser.h"
#include "reader/writer.h"
#include "wam/builtins.h"
#include "wam/machine.h"
#include "wam/program.h"

namespace educe::wam {
namespace {

/// End-to-end harness: consult source text, run queries, render answers.
class WamTest : public ::testing::Test {
 protected:
  WamTest() : program_(&dict_) {
    EXPECT_TRUE(InstallStandardLibrary(&program_).ok());
  }

  void Consult(std::string_view source) {
    auto clauses = reader::ParseProgram(&dict_, source);
    ASSERT_TRUE(clauses.ok()) << clauses.status();
    for (const auto& clause : *clauses) {
      ASSERT_TRUE(program_.AddClause(clause.term).ok());
    }
  }

  /// All solutions (up to `max`) rendered as "X = 1, Y = a"; a solution of
  /// a variable-free query renders as "true".
  std::vector<std::string> Solve(std::string_view query, int max = 100,
                                 MachineOptions options = {}) {
    auto read = reader::ParseTerm(&dict_, query);
    EXPECT_TRUE(read.ok()) << read.status() << " for " << query;
    if (!read.ok()) return {};

    Machine machine(&program_, options);
    last_status_ = machine.StartQuery(read->term, read->num_vars);
    EXPECT_TRUE(last_status_.ok()) << last_status_;
    std::vector<std::string> out;
    while (static_cast<int>(out.size()) < max) {
      auto more = machine.NextSolution();
      if (!more.ok()) {
        last_status_ = more.status();
        break;
      }
      if (!*more) break;
      std::map<uint64_t, uint32_t> var_map;
      std::string rendered;
      for (const auto& [name, index] : read->var_names) {
        if (!rendered.empty()) rendered += ", ";
        rendered += name + " = " +
                    reader::WriteTerm(dict_, *machine.ExportVar(index, &var_map));
      }
      out.push_back(rendered.empty() ? "true" : rendered);
    }
    last_stats_ = machine.stats();
    return out;
  }

  /// Convenience: does the goal succeed at least once?
  bool Succeeds(std::string_view query) { return !Solve(query, 1).empty(); }

  dict::Dictionary dict_;
  Program program_;
  base::Status last_status_;
  MachineStats last_stats_;
};

TEST_F(WamTest, FactsEnumerate) {
  Consult("p(1). p(2). p(3).");
  EXPECT_EQ(Solve("p(X)"),
            (std::vector<std::string>{"X = 1", "X = 2", "X = 3"}));
}

TEST_F(WamTest, GroundQuerySucceedsOrFails) {
  Consult("p(1). p(2).");
  EXPECT_TRUE(Succeeds("p(1)"));
  EXPECT_FALSE(Succeeds("p(7)"));
}

TEST_F(WamTest, ConjunctionAndSharedVariables) {
  Consult("edge(a, b). edge(b, c). edge(c, d).");
  EXPECT_EQ(Solve("edge(X, Y), edge(Y, Z)"),
            (std::vector<std::string>{"X = a, Y = b, Z = c",
                                      "X = b, Y = c, Z = d"}));
}

TEST_F(WamTest, RulesAndRecursion) {
  Consult(R"(
    parent(tom, bob). parent(bob, ann). parent(ann, joe).
    anc(X, Y) :- parent(X, Y).
    anc(X, Y) :- parent(X, Z), anc(Z, Y).
  )");
  EXPECT_EQ(Solve("anc(tom, X)"),
            (std::vector<std::string>{"X = bob", "X = ann", "X = joe"}));
  EXPECT_TRUE(Succeeds("anc(bob, joe)"));
  EXPECT_FALSE(Succeeds("anc(joe, tom)"));
}

TEST_F(WamTest, StructuresUnify) {
  Consult("shape(circle(R), area) :- R > 0.  shape(square(S), area) :- S > 0.");
  EXPECT_TRUE(Succeeds("shape(circle(3), area)"));
  EXPECT_FALSE(Succeeds("shape(circle(0), area)"));
  EXPECT_TRUE(Succeeds("shape(square(2), area)"));
}

TEST_F(WamTest, NestedStructures) {
  Consult("deep(f(g(h(X)), [X, k(X)])).");
  EXPECT_EQ(Solve("deep(f(g(h(7)), L))"),
            (std::vector<std::string>{"L = [7,k(7)]"}));
}

TEST_F(WamTest, ListsViaLibrary) {
  EXPECT_EQ(Solve("append([1,2], [3], L)"),
            (std::vector<std::string>{"L = [1,2,3]"}));
  EXPECT_EQ(Solve("append(X, Y, [a,b])").size(), 3u);
  EXPECT_EQ(Solve("member(X, [x,y,z])").size(), 3u);
  EXPECT_EQ(Solve("length([a,b,c], N)"),
            (std::vector<std::string>{"N = 3"}));
  EXPECT_EQ(Solve("reverse([1,2,3], R)"),
            (std::vector<std::string>{"R = [3,2,1]"}));
}

TEST_F(WamTest, ArithmeticEvaluation) {
  EXPECT_EQ(Solve("X is 2 + 3 * 4"), (std::vector<std::string>{"X = 14"}));
  EXPECT_EQ(Solve("X is (2 + 3) * 4"), (std::vector<std::string>{"X = 20"}));
  EXPECT_EQ(Solve("X is 7 // 2"), (std::vector<std::string>{"X = 3"}));
  EXPECT_EQ(Solve("X is -7 // 2"), (std::vector<std::string>{"X = -4"}));
  EXPECT_EQ(Solve("X is 7 mod 3"), (std::vector<std::string>{"X = 1"}));
  EXPECT_EQ(Solve("X is -7 mod 3"), (std::vector<std::string>{"X = 2"}));
  EXPECT_EQ(Solve("X is abs(-5)"), (std::vector<std::string>{"X = 5"}));
  EXPECT_EQ(Solve("X is min(3, 9)"), (std::vector<std::string>{"X = 3"}));
  EXPECT_EQ(Solve("X is 2 ^ 10"), (std::vector<std::string>{"X = 1024"}));
  EXPECT_EQ(Solve("X is 10 / 4"), (std::vector<std::string>{"X = 2.5"}));
  EXPECT_EQ(Solve("X is 10 / 5"), (std::vector<std::string>{"X = 2"}));
}

TEST_F(WamTest, ArithmeticComparisons) {
  EXPECT_TRUE(Succeeds("3 < 4"));
  EXPECT_FALSE(Succeeds("4 < 3"));
  EXPECT_TRUE(Succeeds("2 + 2 =:= 4"));
  EXPECT_TRUE(Succeeds("2 + 2 =\\= 5"));
  EXPECT_TRUE(Succeeds("3.5 > 3"));
  EXPECT_TRUE(Succeeds("10 >= 10"));
}

TEST_F(WamTest, ArithmeticErrors) {
  Solve("X is 1 / 0", 1);
  EXPECT_FALSE(last_status_.ok());
  Solve("X is foo + 1", 1);
  EXPECT_FALSE(last_status_.ok());
  Solve("X is Y + 1", 1);
  EXPECT_EQ(last_status_.code(), base::StatusCode::kInstantiationError);
}

TEST_F(WamTest, CutPrunesAlternatives) {
  Consult(R"(
    max(X, Y, X) :- X >= Y, !.
    max(_, Y, Y).
  )");
  EXPECT_EQ(Solve("max(3, 7, M)"), (std::vector<std::string>{"M = 7"}));
  // Without the cut this would give two answers; with it exactly one.
  EXPECT_EQ(Solve("max(9, 2, M)"), (std::vector<std::string>{"M = 9"}));
}

TEST_F(WamTest, CutInsideEnumeration) {
  Consult("first(X) :- member(X, [a,b,c]), !.");
  EXPECT_EQ(Solve("first(X)"), (std::vector<std::string>{"X = a"}));
}

TEST_F(WamTest, NegationAsFailure) {
  Consult("p(1). p(2).");
  EXPECT_TRUE(Succeeds("\\+ p(3)"));
  EXPECT_FALSE(Succeeds("\\+ p(1)"));
  EXPECT_EQ(Solve("member(X, [1,2,3,4]), \\+ p(X)"),
            (std::vector<std::string>{"X = 3", "X = 4"}));
}

TEST_F(WamTest, Disjunction) {
  EXPECT_EQ(Solve("( X = 1 ; X = 2 )"),
            (std::vector<std::string>{"X = 1", "X = 2"}));
}

TEST_F(WamTest, IfThenElse) {
  Consult("classify(X, neg) :- ( X < 0 -> true ; fail ).");
  EXPECT_TRUE(Succeeds("classify(-3, neg)"));
  EXPECT_FALSE(Succeeds("classify(3, neg)"));

  Consult("sign_of(X, S) :- ( X > 0 -> S = pos ; X < 0 -> S = neg ; S = zero ).");
  EXPECT_EQ(Solve("sign_of(5, S)"), (std::vector<std::string>{"S = pos"}));
  EXPECT_EQ(Solve("sign_of(-5, S)"), (std::vector<std::string>{"S = neg"}));
  EXPECT_EQ(Solve("sign_of(0, S)"), (std::vector<std::string>{"S = zero"}));
  // The condition is committed: only one solution even though X > 0
  // could backtrack into other branches.
  EXPECT_EQ(Solve("sign_of(5, S)").size(), 1u);
}

TEST_F(WamTest, TermInspection) {
  EXPECT_EQ(Solve("functor(foo(a, b), F, N)"),
            (std::vector<std::string>{"F = foo, N = 2"}));
  EXPECT_EQ(Solve("functor(T, pair, 2), arg(1, T, left)"),
            (std::vector<std::string>{"T = pair(left,_G0)"}));
  EXPECT_EQ(Solve("foo(a, b) =.. L"),
            (std::vector<std::string>{"L = [foo,a,b]"}));
  EXPECT_EQ(Solve("T =.. [g, 1, 2]"),
            (std::vector<std::string>{"T = g(1,2)"}));
  EXPECT_EQ(Solve("arg(2, t(a, b, c), A)"),
            (std::vector<std::string>{"A = b"}));
}

TEST_F(WamTest, TypeTests) {
  EXPECT_TRUE(Succeeds("atom(foo)"));
  EXPECT_FALSE(Succeeds("atom(1)"));
  EXPECT_TRUE(Succeeds("integer(3)"));
  EXPECT_TRUE(Succeeds("float(3.5)"));
  EXPECT_TRUE(Succeeds("number(3.5)"));
  EXPECT_TRUE(Succeeds("var(_)"));
  EXPECT_TRUE(Succeeds("X = f(Y), compound(X)"));
  EXPECT_TRUE(Succeeds("is_list([1,2])"));
  EXPECT_FALSE(Succeeds("is_list([1|_])"));
  EXPECT_TRUE(Succeeds("ground(f(1, a))"));
  EXPECT_FALSE(Succeeds("ground(f(1, _))"));
}

TEST_F(WamTest, StandardOrder) {
  EXPECT_TRUE(Succeeds("1 @< a"));
  EXPECT_TRUE(Succeeds("a @< f(a)"));
  EXPECT_TRUE(Succeeds("f(a) @< f(b)"));
  EXPECT_TRUE(Succeeds("f(a) @< g(a)"));
  EXPECT_TRUE(Succeeds("f(a) @< f(a, b)"));
  EXPECT_TRUE(Succeeds("f(a) == f(a)"));
  EXPECT_TRUE(Succeeds("f(a) \\== f(b)"));
  EXPECT_TRUE(Succeeds("X = Y, X == Y"));
  EXPECT_FALSE(Succeeds("X == Y"));
  EXPECT_EQ(Solve("compare(O, 1, 2)"), (std::vector<std::string>{"O = <"}));
}

TEST_F(WamTest, UnifyAndNotUnify) {
  EXPECT_EQ(Solve("f(X, b) = f(a, Y)"),
            (std::vector<std::string>{"X = a, Y = b"}));
  EXPECT_TRUE(Succeeds("f(a) \\= f(b)"));
  EXPECT_FALSE(Succeeds("f(a) \\= f(a)"));
  EXPECT_FALSE(Succeeds("X \\= a"));  // unifiable, so \= fails
}

TEST_F(WamTest, CopyTerm) {
  EXPECT_EQ(Solve("copy_term(f(X, X, a), T)"),
            (std::vector<std::string>{"X = _G0, T = f(_G1,_G1,a)"}));
}

TEST_F(WamTest, Between) {
  EXPECT_EQ(Solve("between(1, 4, X)"),
            (std::vector<std::string>{"X = 1", "X = 2", "X = 3", "X = 4"}));
  EXPECT_TRUE(Succeeds("between(1, 10, 5)"));
  EXPECT_FALSE(Succeeds("between(1, 10, 50)"));
}

TEST_F(WamTest, Findall) {
  Consult("p(1). p(2). p(3).");
  EXPECT_EQ(Solve("findall(X, p(X), L)"),
            (std::vector<std::string>{"X = _G0, L = [1,2,3]"}));
  EXPECT_EQ(Solve("findall(X-Y, (p(X), p(Y), X < Y), L)"),
            (std::vector<std::string>{
                "X = _G0, Y = _G1, L = [1 - 2,1 - 3,2 - 3]"}));
  EXPECT_EQ(Solve("findall(X, fail, L)"),
            (std::vector<std::string>{"X = _G0, L = []"}));
  // Nested findall.
  EXPECT_EQ(Solve("findall(L1, (p(X), findall(Y, (p(Y), Y =< X), L1)), L)"),
            (std::vector<std::string>{
                "L1 = _G0, X = _G1, Y = _G2, L = [[1],[1,2],[1,2,3]]"}));
}

TEST_F(WamTest, AssertAndRetract) {
  EXPECT_FALSE(Succeeds("fact(1)"));
  EXPECT_TRUE(Succeeds("assert(fact(1))"));
  EXPECT_TRUE(Succeeds("fact(1)"));
  EXPECT_TRUE(Succeeds("assert(fact(2)), assert(fact(3))"));
  EXPECT_EQ(Solve("fact(X)").size(), 3u);
  EXPECT_TRUE(Succeeds("retract(fact(2))"));
  EXPECT_EQ(Solve("fact(X)").size(), 2u);
  EXPECT_FALSE(Succeeds("retract(fact(9))"));
  EXPECT_TRUE(Succeeds("asserta(fact(0))"));
  EXPECT_EQ(Solve("fact(X)")[0], "X = 0");
  EXPECT_TRUE(Succeeds("abolish(fact/1)"));
  EXPECT_FALSE(Succeeds("fact(0)"));
}

TEST_F(WamTest, AssertRules) {
  EXPECT_TRUE(Succeeds("assert((double(X, Y) :- Y is X * 2))"));
  EXPECT_EQ(Solve("double(21, Y)"), (std::vector<std::string>{"Y = 42"}));
}

TEST_F(WamTest, Metacall) {
  Consult("p(1). p(2).");
  EXPECT_EQ(Solve("G = p(X), call(G)").size(), 2u);
  EXPECT_EQ(Solve("call(p, X)").size(), 2u);
  EXPECT_TRUE(Succeeds("call((p(1), p(2)))"));
  EXPECT_TRUE(Succeeds("call((p(9) ; p(2)))"));
  EXPECT_FALSE(Succeeds("call(\\+ p(1))"));
  Solve("call(X)", 1);
  EXPECT_EQ(last_status_.code(), base::StatusCode::kInstantiationError);
}

TEST_F(WamTest, AtomBuiltins) {
  EXPECT_EQ(Solve("atom_codes(abc, L), atom_codes(A, L)"),
            (std::vector<std::string>{"L = [97,98,99], A = abc"}));
  EXPECT_EQ(Solve("atom_length(hello, N)"),
            (std::vector<std::string>{"N = 5"}));
  EXPECT_EQ(Solve("atom_concat(foo, bar, A)"),
            (std::vector<std::string>{"A = foobar"}));
  EXPECT_EQ(Solve("number_codes(N, \"42\")"),
            (std::vector<std::string>{"N = 42"}));
}

TEST_F(WamTest, UndefinedPredicateIsError) {
  Solve("no_such_thing(1)", 1);
  EXPECT_EQ(last_status_.code(), base::StatusCode::kNotFound);
}

TEST_F(WamTest, UndefinedPredicateCanFail) {
  MachineOptions options;
  options.unknown_predicates_fail = true;
  EXPECT_TRUE(Solve("no_such_thing(1)", 1, options).empty());
  EXPECT_TRUE(last_status_.ok());
}

TEST_F(WamTest, DeepRecursionWithGc) {
  Consult(R"(
    build(0, []) :- !.
    build(N, [N|T]) :- M is N - 1, build(M, T).
    sum([], 0).
    sum([H|T], S) :- sum(T, S1), S is S1 + H.
  )");
  MachineOptions options;
  options.gc_threshold_cells = 4096;  // force frequent collections
  auto result = Solve("build(2000, L), sum(L, S), L = [F|_]", 1, options);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_NE(result[0].find("S = 2001000"), std::string::npos);
  EXPECT_NE(result[0].find("F = 2000"), std::string::npos);
  EXPECT_GT(last_stats_.gc_runs, 0u) << "GC should have triggered";
}

TEST_F(WamTest, GcPreservesBacktracking) {
  Consult(R"(
    blow(0) :- !.
    blow(N) :- M is N - 1, blow(M).
    pick(X) :- member(X, [1,2,3]), blow(3000).
  )");
  MachineOptions options;
  options.gc_threshold_cells = 2048;
  EXPECT_EQ(Solve("pick(X)", 100, options),
            (std::vector<std::string>{"X = 1", "X = 2", "X = 3"}));
  EXPECT_GT(last_stats_.gc_runs, 0u);
}

TEST_F(WamTest, TailRecursionRunsInBoundedHeapWithGc) {
  Consult(R"(
    count(N, N) :- !.
    count(I, N) :- I < N, J is I + 1, count(J, N).
  )");
  MachineOptions options;
  options.gc_threshold_cells = 4096;
  options.max_heap_cells = 1u << 22;
  EXPECT_TRUE(Succeeds("count(0, 100000)"));
}

TEST_F(WamTest, FirstArgumentIndexingReducesChoicePoints) {
  std::ostringstream source;
  for (int i = 0; i < 200; ++i) {
    source << "big(k" << i << ", " << i << ").\n";
  }
  Consult(source.str());

  program_.SetIndexingEnabled(true);
  Solve("big(k150, V)");
  const uint64_t with_index = last_stats_.choice_points;

  program_.SetIndexingEnabled(false);
  Solve("big(k150, V)");
  const uint64_t without_index = last_stats_.choice_points;

  EXPECT_EQ(with_index, 0u) << "unique key: deterministic dispatch";
  EXPECT_GT(without_index, 0u);
  program_.SetIndexingEnabled(true);
}

TEST_F(WamTest, IndexingPreservesSolutionOrder) {
  Consult(R"(
    m(a, 1). m(b, 2). m(X, 3) :- X = c. m(a, 4). m(d, 5).
  )");
  // The var-headed clause (matching only c) interleaves correctly: it is
  // *tried* in every bucket but only succeeds for c.
  EXPECT_EQ(Solve("m(a, V)"), (std::vector<std::string>{"V = 1", "V = 4"}));
  EXPECT_EQ(Solve("m(c, V)"), (std::vector<std::string>{"V = 3"}));
  EXPECT_EQ(Solve("m(Q, V)").size(), 5u);

  program_.SetIndexingEnabled(false);
  EXPECT_EQ(Solve("m(a, V)"), (std::vector<std::string>{"V = 1", "V = 4"}));
  EXPECT_EQ(Solve("m(c, V)"), (std::vector<std::string>{"V = 3"}));
  program_.SetIndexingEnabled(true);
}

TEST_F(WamTest, IndexingOnTypes) {
  Consult(R"(
    t(7, int). t(x, atom). t([1], list). t(f(1), struct). t(2.5, float).
  )");
  EXPECT_EQ(Solve("t(7, W)"), (std::vector<std::string>{"W = int"}));
  EXPECT_EQ(Solve("t(x, W)"), (std::vector<std::string>{"W = atom"}));
  EXPECT_EQ(Solve("t([1], W)"), (std::vector<std::string>{"W = list"}));
  EXPECT_EQ(Solve("t(f(1), W)"), (std::vector<std::string>{"W = struct"}));
  EXPECT_EQ(Solve("t(2.5, W)"), (std::vector<std::string>{"W = float"}));
  EXPECT_EQ(Solve("t(T, W)").size(), 5u);
}

TEST_F(WamTest, FloatsUnifyAndCompute) {
  EXPECT_TRUE(Succeeds("X = 2.5, X = 2.5"));
  EXPECT_FALSE(Succeeds("2.5 = 2.6"));
  EXPECT_EQ(Solve("X is 1.5 + 2.25"), (std::vector<std::string>{"X = 3.75"}));
  EXPECT_TRUE(Succeeds("X is 2.0, X =:= 2"));
  EXPECT_FALSE(Succeeds("2.0 = 2"));  // unification is not =:=
}

TEST_F(WamTest, ForallAndIgnore) {
  Consult("p(1). p(2). p(3).");
  EXPECT_TRUE(Succeeds("forall(p(X), X > 0)"));
  EXPECT_FALSE(Succeeds("forall(p(X), X > 1)"));
  EXPECT_TRUE(Succeeds("ignore(p(99))"));
}

TEST_F(WamTest, WriteProducesOutput) {
  auto read = reader::ParseTerm(&dict_, "write(f(X, [1,2])), nl");
  ASSERT_TRUE(read.ok());
  Machine machine(&program_);
  std::ostringstream out;
  machine.set_output(&out);
  ASSERT_TRUE(machine.StartQuery(read->term, read->num_vars).ok());
  auto more = machine.NextSolution();
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(*more);
  EXPECT_EQ(out.str(), "f(_G0,[1,2])\n");
}

TEST_F(WamTest, LastCallOptimizationKeepsStackFlat) {
  // A long deterministic tail-recursive loop must not run out of memory;
  // with TRO the environment stack stays bounded.
  Consult(R"(
    loop(0) :- !.
    loop(N) :- M is N - 1, loop(M).
  )");
  EXPECT_TRUE(Succeeds("loop(200000)"));
}

TEST_F(WamTest, QueriesAreIsolated) {
  Consult("p(1).");
  EXPECT_TRUE(Succeeds("X = 5"));
  EXPECT_TRUE(Succeeds("X = 6"));  // no state leak between queries
  EXPECT_EQ(Solve("p(X)").size(), 1u);
}

// Parameterized sweep: naive reverse of lists of several sizes exercises
// the allocator, GC, and unification on a classic benchmark shape.
class NreverseTest : public WamTest,
                     public ::testing::WithParamInterface<int> {};

TEST_P(NreverseTest, ReversesCorrectly) {
  Consult(R"(
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
    make(0, []) :- !.
    make(N, [N|T]) :- M is N - 1, make(M, T).
  )");
  const int n = GetParam();
  MachineOptions options;
  options.gc_threshold_cells = 16384;
  auto result = Solve("make(" + std::to_string(n) +
                          ", L), nrev(L, R), R = [First|_]",
                      1, options);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_NE(result[0].find("First = 1"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NreverseTest,
                         ::testing::Values(1, 5, 30, 100, 300));

}  // namespace
}  // namespace educe::wam
