// Property test for the pre-unification unit (paper §4): the filter must
// be *sound* — it may keep clauses that full unification later rejects
// (necessary, not sufficient), but it must NEVER drop a clause whose head
// unifies with the call. We verify by differential execution: the set of
// solutions with the filter on equals the set with it off, across random
// stored predicates and random call patterns.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "educe/engine.h"

namespace educe {
namespace {

std::string RandomArg(base::Rng* rng, bool allow_var) {
  switch (rng->Below(allow_var ? 6 : 5)) {
    case 0: return "a" + std::to_string(rng->Below(4));
    case 1: return std::to_string(rng->Below(5));
    case 2: return std::to_string(rng->Below(3)) + ".5";
    case 3: return "g(a" + std::to_string(rng->Below(3)) + ")";
    case 4: return "[x" + std::to_string(rng->Below(3)) + "]";
    default: return "V" + std::to_string(rng->Below(2));
  }
}

class PreUnifyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PreUnifyPropertyTest, FilterNeverDropsUnifiableClauses) {
  base::Rng rng(GetParam());

  // Random stored predicate: 40 clauses over 3 argument positions with a
  // mix of constants, numbers, structures, lists and variables.
  std::string rules;
  for (int c = 0; c < 40; ++c) {
    rules += "rp(" + RandomArg(&rng, true) + ", " + RandomArg(&rng, true) +
             ", " + RandomArg(&rng, true) + ").\n";
  }

  auto make_engine = [&](bool preunify) {
    EngineOptions options;
    options.rule_storage = RuleStorage::kCompiled;
    options.loader_cache = false;  // force per-call (filtered) loads
    options.preunify = preunify;
    auto engine = std::make_unique<Engine>(options);
    EXPECT_TRUE(engine->StoreRulesExternal(rules).ok());
    return engine;
  };
  auto filtered = make_engine(true);
  auto unfiltered = make_engine(false);

  auto solutions = [](Engine* engine, const std::string& query) {
    std::vector<std::string> out;
    auto q = engine->Query(query);
    EXPECT_TRUE(q.ok()) << q.status();
    if (!q.ok()) return out;
    while (true) {
      auto more = (*q)->Next();
      EXPECT_TRUE(more.ok()) << more.status();
      if (!more.ok() || !*more) break;
      out.push_back((*q)->Binding("A") + "|" + (*q)->Binding("B") + "|" +
                    (*q)->Binding("C"));
    }
    return out;
  };

  // Random call patterns of every boundness combination.
  for (int trial = 0; trial < 25; ++trial) {
    std::string args[3];
    const char* vars[] = {"A", "B", "C"};
    for (int i = 0; i < 3; ++i) {
      args[i] = rng.Below(2) == 0 ? vars[i] : RandomArg(&rng, false);
    }
    const std::string query =
        "rp(" + args[0] + ", " + args[1] + ", " + args[2] + ")";
    // Bind the unused output vars so rendering is uniform.
    std::string wrapped = query;
    for (int i = 0; i < 3; ++i) {
      if (args[i] != vars[i]) wrapped += std::string(", ") + vars[i] + " = x";
    }
    EXPECT_EQ(solutions(filtered.get(), wrapped),
              solutions(unfiltered.get(), wrapped))
        << "filter changed semantics for " << wrapped << "\nrules:\n"
        << rules;
  }

  // The filter actually fires on this workload (sanity for the property).
  EXPECT_GT(filtered->Stats().clause_store.preunify_filtered, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreUnifyPropertyTest,
                         ::testing::Values(5, 15, 25, 35, 45, 55));

}  // namespace
}  // namespace educe
