// Algebraic property tests on the machine's term operations: unification
// (idempotence, symmetry, import/export inverses) and the standard order
// of terms (total, antisymmetric, transitive), over randomly generated
// terms — plus a parameterized arithmetic evaluation table.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "wam/builtins.h"
#include "wam/machine.h"
#include "wam/program.h"

namespace educe::wam {
namespace {

using term::Cell;

class TermPropertyHarness {
 public:
  TermPropertyHarness() : program_(&dict_), machine_(&program_) {
    (void)InstallStandardLibrary(&program_);
    // A live query context gives us a heap to build terms on.
    auto read = reader::ParseTerm(&dict_, "true");
    (void)machine_.StartQuery(read->term, 0);
    (void)machine_.NextSolution();
  }

  term::AstPtr RandomAst(base::Rng* rng, int depth, int max_vars = 3) {
    const uint64_t pick = rng->Below(depth >= 3 ? 4 : 6);
    switch (pick) {
      case 0:
        return term::MakeInt(static_cast<int64_t>(rng->Below(100)) - 50);
      case 1:
        return term::MakeFloat(static_cast<double>(rng->Below(16)) / 4.0);
      case 2:
        return term::MakeAtom(
            *dict_.Intern("at" + std::to_string(rng->Below(6)), 0));
      case 3:
        return term::MakeVar(static_cast<uint32_t>(rng->Below(max_vars)), "");
      case 4: {
        const uint32_t arity = 1 + static_cast<uint32_t>(rng->Below(3));
        std::vector<term::AstPtr> args;
        for (uint32_t i = 0; i < arity; ++i) {
          args.push_back(RandomAst(rng, depth + 1, max_vars));
        }
        return term::MakeStruct(
            *dict_.Intern("fn" + std::to_string(rng->Below(4)), arity),
            std::move(args));
      }
      default: {
        std::vector<term::AstPtr> elements;
        for (uint64_t i = 0, n = rng->Below(3); i < n; ++i) {
          elements.push_back(RandomAst(rng, depth + 1, max_vars));
        }
        return term::MakeList(*dict_.Intern(".", 2), elements,
                              term::MakeAtom(*dict_.Intern("[]", 0)));
      }
    }
  }

  Cell Import(const term::AstPtr& t, std::vector<Cell>* vars) {
    return std::move(machine_.ImportAst(*t, vars)).value();
  }

  std::string Render(Cell c) {
    std::map<uint64_t, uint32_t> var_map;
    return reader::WriteTerm(dict_, *machine_.ExportCell(c, &var_map));
  }

  dict::Dictionary dict_;
  Program program_;
  Machine machine_;
};

class UnifyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnifyPropertyTest, ReflexiveSymmetricAndStable) {
  TermPropertyHarness h;
  base::Rng rng(GetParam());

  for (int trial = 0; trial < 200; ++trial) {
    term::AstPtr a_ast = h.RandomAst(&rng, 0);
    term::AstPtr b_ast = h.RandomAst(&rng, 0);

    // Reflexivity: every term unifies with a fresh copy of itself, and
    // unification binds nothing new when the copies share no variables...
    {
      std::vector<Cell> vars;
      Cell a = h.Import(a_ast, &vars);
      const size_t mark = h.machine_.TrailMark();
      EXPECT_TRUE(h.machine_.Unify(a, a)) << h.Render(a);
      EXPECT_EQ(h.machine_.TrailMark(), mark) << "self-unify must not bind";
    }

    // Symmetry: unify(a, b) and unify(b, a) agree, and when both succeed
    // they produce the same instantiation of a distinguished variable set.
    auto attempt = [&](bool flip) {
      std::vector<Cell> va, vb;
      Cell a = h.Import(a_ast, &va);
      Cell b = h.Import(b_ast, &vb);
      const size_t mark = h.machine_.TrailMark();
      const bool ok =
          flip ? h.machine_.Unify(b, a) : h.machine_.Unify(a, b);
      std::string witness = ok ? h.Render(a) : "";
      h.machine_.UndoTo(mark);
      return std::make_pair(ok, witness);
    };
    const auto [ok_ab, w_ab] = attempt(false);
    const auto [ok_ba, w_ba] = attempt(true);
    EXPECT_EQ(ok_ab, ok_ba) << "a=" << w_ab << " b=" << w_ba;
    if (ok_ab && ok_ba) {
      EXPECT_EQ(w_ab, w_ba);
    }

    // Undo restores unboundness: after UndoTo, the same pair unifies the
    // same way again (no residue).
    const auto [ok2, w2] = attempt(false);
    EXPECT_EQ(ok2, ok_ab);
    if (ok2) {
      EXPECT_EQ(w2, w_ab);
    }
  }
}

TEST_P(UnifyPropertyTest, ExportImportRoundTrips) {
  TermPropertyHarness h;
  base::Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 200; ++trial) {
    term::AstPtr ast = h.RandomAst(&rng, 0);
    std::vector<Cell> vars;
    Cell a = h.Import(ast, &vars);
    // export(import(t)) renders identically to a re-import of the export.
    std::map<uint64_t, uint32_t> var_map;
    term::AstPtr exported = h.machine_.ExportCell(a, &var_map);
    std::vector<Cell> vars2;
    Cell b = h.Import(exported, &vars2);
    EXPECT_EQ(h.Render(a), h.Render(b));
    // And the copies unify (they are structurally identical).
    EXPECT_TRUE(h.machine_.Unify(a, b));
  }
}

TEST_P(UnifyPropertyTest, StandardOrderIsATotalOrder) {
  TermPropertyHarness h;
  base::Rng rng(GetParam() + 2000);

  std::vector<Cell> terms;
  std::vector<Cell> dummy;
  for (int i = 0; i < 40; ++i) {
    // Ground terms only: variable order is identity-based and valid, but
    // comparisons between runs are cleaner on ground terms.
    term::AstPtr ast = h.RandomAst(&rng, 0, 1);
    std::vector<Cell> vars;
    terms.push_back(h.Import(ast, &vars));
  }

  auto cmp = [&](Cell a, Cell b) { return h.machine_.Compare(a, b); };
  for (const Cell& a : terms) {
    EXPECT_EQ(cmp(a, a), 0);
    for (const Cell& b : terms) {
      // Antisymmetry.
      EXPECT_EQ(cmp(a, b), -cmp(b, a)) << h.Render(a) << " vs " << h.Render(b);
      for (const Cell& c : terms) {
        // Transitivity (on the <= relation).
        if (cmp(a, b) <= 0 && cmp(b, c) <= 0) {
          EXPECT_LE(cmp(a, c), 0)
              << h.Render(a) << " / " << h.Render(b) << " / " << h.Render(c);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnifyPropertyTest,
                         ::testing::Values(1, 7, 42, 1337));

// ---------------------------------------------------------------------------
// Arithmetic evaluation table (via the full engine pipeline).
// ---------------------------------------------------------------------------

struct ArithCase {
  const char* expr;
  const char* expected;  // rendered result
};

class ArithmeticTableTest : public ::testing::TestWithParam<ArithCase> {};

TEST_P(ArithmeticTableTest, Evaluates) {
  dict::Dictionary dict;
  Program program(&dict);
  ASSERT_TRUE(InstallStandardLibrary(&program).ok());
  Machine machine(&program);
  auto read = reader::ParseTerm(
      &dict, std::string("X is ") + GetParam().expr);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_TRUE(machine.StartQuery(read->term, read->num_vars).ok());
  auto more = machine.NextSolution();
  ASSERT_TRUE(more.ok()) << more.status() << " for " << GetParam().expr;
  ASSERT_TRUE(*more) << GetParam().expr;
  std::map<uint64_t, uint32_t> var_map;
  EXPECT_EQ(reader::WriteTerm(dict, *machine.ExportVar(0, &var_map)),
            GetParam().expected)
      << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ArithmeticTableTest,
    ::testing::Values(
        ArithCase{"1 + 2", "3"}, ArithCase{"2 - 5", "-3"},
        ArithCase{"6 * 7", "42"}, ArithCase{"1 + 2 * 3", "7"},
        ArithCase{"(1 + 2) * 3", "9"}, ArithCase{"7 // 2", "3"},
        ArithCase{"-7 // 2", "-4"}, ArithCase{"7 rem 2", "1"},
        ArithCase{"-7 rem 2", "-1"}, ArithCase{"-7 mod 2", "1"},
        ArithCase{"min(2, -3)", "-3"}, ArithCase{"max(2, -3)", "2"},
        ArithCase{"abs(-9)", "9"}, ArithCase{"sign(-9)", "-1"},
        ArithCase{"2 ^ 16", "65536"}, ArithCase{"1 << 10", "1024"},
        ArithCase{"1024 >> 3", "128"}, ArithCase{"12 /\\ 10", "8"},
        ArithCase{"12 \\/ 10", "14"}, ArithCase{"12 xor 10", "6"},
        ArithCase{"\\ 0", "-1"}, ArithCase{"1.5 + 0.25", "1.75"},
        ArithCase{"2 * 1.5", "3.0"}, ArithCase{"float(2)", "2.0"},
        ArithCase{"truncate(3.9)", "3"}, ArithCase{"floor(3.9)", "3"},
        ArithCase{"ceiling(3.1)", "4"}, ArithCase{"round(3.5)", "4"},
        ArithCase{"integer(-3.9)", "-3"}, ArithCase{"sqrt(16.0)", "4.0"},
        ArithCase{"10 / 4", "2.5"}, ArithCase{"10 / 5", "2"},
        ArithCase{"- (3 + 4)", "-7"}, ArithCase{"+(5)", "5"}));

}  // namespace
}  // namespace educe::wam
