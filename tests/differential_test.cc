// Differential testing: a tiny reference SLD-resolution interpreter over
// ASTs is the oracle; the WAM (compiler + linker + emulator), with and
// without first-argument indexing, and with clauses stored in the EDB as
// compiled relative code, must produce exactly the same solution lists on
// randomly generated stratified programs.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "base/rng.h"
#include "educe/engine.h"
#include "reader/parser.h"
#include "reader/writer.h"

namespace educe {
namespace {

// ---------------------------------------------------------------------------
// Reference interpreter: substitution-based resolution on ASTs. Pure
// conjunctive programs only (facts + rules, no builtins, no cut).
// ---------------------------------------------------------------------------

class ReferenceInterpreter {
 public:
  explicit ReferenceInterpreter(dict::Dictionary* dict) : dict_(dict) {}

  void AddClause(const term::AstPtr& clause) {
    term::AstPtr head = clause;
    term::AstPtr body;
    if (IsFunctor(*clause, ":-", 2)) {
      head = clause->args[0];
      body = clause->args[1];
    }
    Clause c;
    c.head = head;
    if (body != nullptr) Flatten(body, &c.body);
    c.num_vars = ClauseVars(clause);
    db_[head->functor].push_back(std::move(c));
  }

  // All solutions of `goal`, rendered: each solution is the list of
  // query-variable bindings in index order.
  std::vector<std::string> Solve(const term::AstPtr& goal, uint32_t num_vars,
                                 int max_solutions = 10000) {
    bindings_.assign(num_vars, nullptr);
    next_var_ = num_vars;
    solutions_.clear();
    max_solutions_ = max_solutions;
    std::vector<term::AstPtr> goals;
    Flatten(goal, &goals);
    std::vector<uint32_t> query_vars(num_vars);
    for (uint32_t i = 0; i < num_vars; ++i) query_vars[i] = i;
    Run(goals, query_vars, 0);
    return solutions_;
  }

 private:
  struct Clause {
    term::AstPtr head;
    std::vector<term::AstPtr> body;
    uint32_t num_vars = 0;
  };

  bool IsFunctor(const term::Ast& t, std::string_view name,
                 size_t arity) const {
    return t.IsStruct() && t.args.size() == arity &&
           dict_->NameOf(t.functor) == name;
  }

  void Flatten(const term::AstPtr& body, std::vector<term::AstPtr>* out) {
    if (IsFunctor(*body, ",", 2)) {
      Flatten(body->args[0], out);
      Flatten(body->args[1], out);
      return;
    }
    out->push_back(body);
  }

  static uint32_t ClauseVars(const term::AstPtr& clause) {
    return term::CountVars(*clause);
  }

  // Dereference a variable index through the substitution.
  term::AstPtr Walk(term::AstPtr t) {
    while (t->IsVar()) {
      if (t->var_index >= bindings_.size() ||
          bindings_[t->var_index] == nullptr) {
        return t;
      }
      t = bindings_[t->var_index];
    }
    return t;
  }

  bool Unify(term::AstPtr a, term::AstPtr b, std::vector<uint32_t>* trail) {
    a = Walk(std::move(a));
    b = Walk(std::move(b));
    if (a->IsVar() && b->IsVar() && a->var_index == b->var_index) return true;
    if (a->IsVar()) {
      Bind(a->var_index, b, trail);
      return true;
    }
    if (b->IsVar()) {
      Bind(b->var_index, a, trail);
      return true;
    }
    if (a->kind != b->kind) return false;
    switch (a->kind) {
      case term::Ast::Kind::kAtom:
        return a->functor == b->functor;
      case term::Ast::Kind::kInt:
        return a->int_value == b->int_value;
      case term::Ast::Kind::kFloat:
        return a->float_value == b->float_value;
      case term::Ast::Kind::kStruct: {
        if (a->functor != b->functor) return false;
        for (size_t i = 0; i < a->args.size(); ++i) {
          if (!Unify(a->args[i], b->args[i], trail)) return false;
        }
        return true;
      }
      default:
        return false;
    }
  }

  void Bind(uint32_t var, term::AstPtr value, std::vector<uint32_t>* trail) {
    if (var >= bindings_.size()) bindings_.resize(var + 1, nullptr);
    bindings_[var] = std::move(value);
    trail->push_back(var);
  }

  // Renames a clause term by shifting its variable indices by `offset`.
  term::AstPtr Rename(const term::AstPtr& t, uint32_t offset) {
    switch (t->kind) {
      case term::Ast::Kind::kVar:
        return term::MakeVar(t->var_index + offset, t->var_name);
      case term::Ast::Kind::kStruct: {
        std::vector<term::AstPtr> args;
        args.reserve(t->args.size());
        for (const auto& arg : t->args) args.push_back(Rename(arg, offset));
        return term::MakeStruct(t->functor, std::move(args));
      }
      default:
        return t;
    }
  }

  // Fully applies the substitution (for rendering solutions).
  term::AstPtr Resolve(term::AstPtr t) {
    t = Walk(std::move(t));
    if (t->IsStruct()) {
      std::vector<term::AstPtr> args;
      args.reserve(t->args.size());
      for (const auto& arg : t->args) args.push_back(Resolve(arg));
      return term::MakeStruct(t->functor, std::move(args));
    }
    return t;
  }

  void Run(const std::vector<term::AstPtr>& goals,
           const std::vector<uint32_t>& query_vars, size_t index) {
    if (static_cast<int>(solutions_.size()) >= max_solutions_) return;
    if (index == goals.size()) {
      std::string rendered;
      for (uint32_t v : query_vars) {
        reader::WriteOptions wo;
        wo.quoted = true;
        term::AstPtr value = Resolve(term::MakeVar(v, ""));
        // Unbound variables render uniformly (fresh per solution).
        rendered += value->IsVar() ? "_" : reader::WriteTerm(*dict_, *value, wo);
        rendered += "; ";
      }
      solutions_.push_back(std::move(rendered));
      return;
    }
    const term::AstPtr goal = Walk(goals[index]);
    if (!goal->IsCallable()) return;  // ill-typed goal: fail
    auto it = db_.find(goal->functor);
    if (it == db_.end()) return;
    for (const Clause& clause : it->second) {
      const uint32_t offset = next_var_;
      next_var_ += clause.num_vars;
      std::vector<uint32_t> trail;
      if (Unify(goal, Rename(clause.head, offset), &trail)) {
        std::vector<term::AstPtr> rest = goals;
        std::vector<term::AstPtr> renamed_body;
        for (const auto& g : clause.body) {
          renamed_body.push_back(Rename(g, offset));
        }
        rest.insert(rest.begin() + static_cast<long>(index) + 1,
                    renamed_body.begin(), renamed_body.end());
        // Goal at `index` is resolved; its body was spliced right after
        // it, so continuing at index+1 is SLD leftmost selection.
        Run(rest, query_vars, index + 1);
      }
      for (auto rit = trail.rbegin(); rit != trail.rend(); ++rit) {
        bindings_[*rit] = nullptr;
      }
      next_var_ = offset;
    }
  }

  dict::Dictionary* dict_;
  std::map<dict::SymbolId, std::vector<Clause>> db_;
  std::vector<term::AstPtr> bindings_;
  uint32_t next_var_ = 0;
  std::vector<std::string> solutions_;
  int max_solutions_ = 10000;
};

// ---------------------------------------------------------------------------
// Random stratified program generator: pred0.. predK where predI's rule
// bodies only call predJ with J < I (no recursion — both evaluators then
// terminate and enumerate identical finite solution sets).
// ---------------------------------------------------------------------------

struct GeneratedProgram {
  std::string text;
  std::vector<std::string> queries;
};

GeneratedProgram GenerateProgram(uint64_t seed) {
  base::Rng rng(seed);
  GeneratedProgram out;
  const int num_preds = 5;
  const int num_consts = 4;
  std::vector<int> arities;

  auto constant = [&](int c) { return "c" + std::to_string(c); };
  auto random_const = [&] { return constant(static_cast<int>(rng.Below(num_consts))); };

  for (int p = 0; p < num_preds; ++p) {
    const int arity = 1 + static_cast<int>(rng.Below(3));
    arities.push_back(arity);
    const std::string name = "p" + std::to_string(p);

    // Facts.
    const int facts = 2 + static_cast<int>(rng.Below(5));
    for (int f = 0; f < facts; ++f) {
      out.text += name + "(";
      for (int a = 0; a < arity; ++a) {
        if (a) out.text += ", ";
        // Occasionally a structured or duplicate-constant argument.
        if (rng.Below(5) == 0) {
          out.text += "s(" + random_const() + ")";
        } else {
          out.text += random_const();
        }
      }
      out.text += ").\n";
    }

    // Rules calling strictly lower predicates.
    if (p > 0) {
      const int rules = 1 + static_cast<int>(rng.Below(2));
      for (int r = 0; r < rules; ++r) {
        const int body_len = 1 + static_cast<int>(rng.Below(2));
        // Head: mix of variables (drawn from a small pool) and constants.
        std::vector<std::string> vars = {"X", "Y", "Z"};
        out.text += name + "(";
        for (int a = 0; a < arity; ++a) {
          if (a) out.text += ", ";
          out.text += rng.Below(3) == 0 ? random_const()
                                        : vars[rng.Below(vars.size())];
        }
        out.text += ") :- ";
        for (int b = 0; b < body_len; ++b) {
          if (b) out.text += ", ";
          const int callee = static_cast<int>(rng.Below(p));
          out.text += "p" + std::to_string(callee) + "(";
          for (int a = 0; a < arities[callee]; ++a) {
            if (a) out.text += ", ";
            out.text += rng.Below(4) == 0 ? random_const()
                                          : vars[rng.Below(vars.size())];
          }
          out.text += ")";
        }
        out.text += ".\n";
      }
    }
  }

  // Queries: each predicate probed with random boundness patterns.
  for (int p = 0; p < num_preds; ++p) {
    for (int q = 0; q < 3; ++q) {
      std::string query = "p" + std::to_string(p) + "(";
      const char* vars[] = {"A", "B", "C"};
      for (int a = 0; a < arities[p]; ++a) {
        if (a) query += ", ";
        query += rng.Below(2) == 0 ? vars[a] : random_const();
      }
      query += ")";
      out.queries.push_back(std::move(query));
    }
  }
  return out;
}

// Renders one engine solution the same way the reference does.
std::vector<std::string> EngineSolutions(Engine* engine,
                                         const std::string& query,
                                         int max_solutions) {
  auto q = engine->Query(query);
  EXPECT_TRUE(q.ok()) << q.status();
  std::vector<std::string> out;
  if (!q.ok()) return out;
  auto parsed = reader::ParseTerm(engine->dictionary(), query);
  while (static_cast<int>(out.size()) < max_solutions) {
    auto more = (*q)->Next();
    EXPECT_TRUE(more.ok()) << more.status() << " for " << query;
    if (!more.ok() || !*more) break;
    std::string rendered;
    for (const auto& [name, index] : parsed->var_names) {
      std::string b = (*q)->Binding(name);
      if (b.rfind("_G", 0) == 0) b = "_";
      rendered += b + "; ";
    }
    out.push_back(std::move(rendered));
  }
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, WamMatchesReferenceInterpreter) {
  const GeneratedProgram program = GenerateProgram(GetParam());
  constexpr int kMaxSolutions = 5000;

  // Oracle.
  dict::Dictionary ref_dict;
  ReferenceInterpreter reference(&ref_dict);
  auto ref_clauses = reader::ParseProgram(&ref_dict, program.text);
  ASSERT_TRUE(ref_clauses.ok()) << ref_clauses.status();
  for (const auto& clause : *ref_clauses) reference.AddClause(clause.term);

  // Systems under test.
  Engine indexed;
  ASSERT_TRUE(indexed.Consult(program.text).ok());
  EngineOptions no_index_options;
  no_index_options.first_arg_indexing = false;
  Engine unindexed(no_index_options);
  ASSERT_TRUE(unindexed.Consult(program.text).ok());
  EngineOptions edb_options;
  edb_options.rule_storage = RuleStorage::kCompiled;
  Engine edb(edb_options);
  ASSERT_TRUE(edb.StoreRulesExternal(program.text).ok());

  for (const std::string& query : program.queries) {
    auto parsed = reader::ParseTerm(&ref_dict, query);
    ASSERT_TRUE(parsed.ok());
    std::vector<std::string> expected =
        reference.Solve(parsed->term, parsed->num_vars, kMaxSolutions);

    EXPECT_EQ(EngineSolutions(&indexed, query, kMaxSolutions), expected)
        << "indexed engine diverged on " << query << "\nprogram:\n"
        << program.text;
    EXPECT_EQ(EngineSolutions(&unindexed, query, kMaxSolutions), expected)
        << "unindexed engine diverged on " << query;
    EXPECT_EQ(EngineSolutions(&edb, query, kMaxSolutions), expected)
        << "EDB-compiled engine diverged on " << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

}  // namespace
}  // namespace educe
