#include <gtest/gtest.h>

#include <string>

#include "edb/clause_store.h"
#include "edb/code_codec.h"
#include "edb/external_dictionary.h"
#include "edb/loader.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"
#include "wam/builtins.h"
#include "wam/program.h"

namespace educe::edb {
namespace {

class EdbTest : public ::testing::Test {
 protected:
  EdbTest()
      : pool_(&file_, 128),
        program_(&dict_),
        external_(std::move(ExternalDictionary::Create(&pool_)).value()),
        codec_(&dict_, &external_, program_.builtins()),
        store_(&pool_, &external_, &codec_, &dict_) {
    EXPECT_TRUE(wam::InstallStandardLibrary(&program_).ok());
  }

  term::AstPtr Parse(std::string_view text) {
    auto read = reader::ParseTerm(&dict_, text);
    EXPECT_TRUE(read.ok()) << read.status();
    return read.ok() ? read->term : nullptr;
  }

  wam::ClauseCode CompileOne(std::string_view clause_text) {
    auto clause = Parse(clause_text);
    auto compiled = program_.compiler()->Compile(clause);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
    return (*compiled)[0].code;
  }

  storage::PagedFile file_;
  storage::BufferPool pool_;
  dict::Dictionary dict_;
  wam::Program program_;
  ExternalDictionary external_;
  CodeCodec codec_;
  ClauseStore store_;
};

TEST_F(EdbTest, ExternalDictionaryRoundTrip) {
  auto h1 = external_.Ensure("foo", 2);
  ASSERT_TRUE(h1.ok());
  auto h2 = external_.Ensure("foo", 2);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(*h1, *h2);
  EXPECT_EQ(external_.entry_count(), 1u);

  auto resolved = external_.Resolve(*h1);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->first, "foo");
  EXPECT_EQ(resolved->second, 2u);

  EXPECT_FALSE(external_.Resolve(0xDEADBEEFull).ok());
}

TEST_F(EdbTest, ExternalHashIsDeterministic) {
  // The associative address must be stable across sessions: it only
  // depends on name and arity.
  EXPECT_EQ(ExternalDictionary::HashOf("p", 3),
            ExternalDictionary::HashOf("p", 3));
  EXPECT_NE(ExternalDictionary::HashOf("p", 3),
            ExternalDictionary::HashOf("p", 2));
  EXPECT_NE(ExternalDictionary::HashOf("p", 3),
            ExternalDictionary::HashOf("q", 3));
}

TEST_F(EdbTest, ClauseCodeRoundTrip) {
  const wam::ClauseCode code =
      CompileOne("route(X, Y, T) :- conn(X, Y, D), D >= T.");
  auto bytes = codec_.EncodeClause(code);
  ASSERT_TRUE(bytes.ok()) << bytes.status();

  auto decoded = codec_.DecodeClause(*bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->code.size(), code.code.size());
  EXPECT_EQ(decoded->num_permanent, code.num_permanent);
  EXPECT_EQ(decoded->needs_environment, code.needs_environment);
  EXPECT_EQ(static_cast<int>(decoded->key.type),
            static_cast<int>(code.key.type));
  // Same dictionary in this test, so decode resolves to identical ids and
  // the disassembly matches exactly.
  EXPECT_EQ(wam::Disassemble(dict_, decoded->code),
            wam::Disassemble(dict_, code.code));
}

TEST_F(EdbTest, ClauseCodeSurvivesFreshDictionary) {
  // The point of relative code (paper §3.1): load into a *different*
  // internal dictionary (new session) and get equivalent code.
  const wam::ClauseCode code = CompileOne("p(foo, N) :- q(N), N > 3.");
  auto bytes = codec_.EncodeClause(code);
  ASSERT_TRUE(bytes.ok());

  dict::Dictionary fresh_dict;
  wam::Program fresh_program(&fresh_dict);
  ASSERT_TRUE(wam::InstallStandardLibrary(&fresh_program).ok());
  CodeCodec fresh_codec(&fresh_dict, &external_, fresh_program.builtins());
  auto decoded = fresh_codec.DecodeClause(*bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // Disassembly against the fresh dictionary shows the same names.
  const std::string text = wam::Disassemble(fresh_dict, decoded->code);
  EXPECT_NE(text.find("get_constant foo/0"), std::string::npos);
  EXPECT_NE(text.find("call q/1"), std::string::npos);
}

TEST_F(EdbTest, GroundTermRoundTrip) {
  for (const char* text :
       {"point(1, 2)", "nested(f(g(h)), [a, b, [c]])", "atom", "s(3.5, -2)",
        "schedule(u6, 480, stop(marienplatz, 2))"}) {
    auto term = Parse(text);
    auto bytes = codec_.EncodeGroundTerm(*term);
    ASSERT_TRUE(bytes.ok()) << bytes.status() << " for " << text;
    auto decoded = codec_.DecodeTerm(*bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(term::AstEquals(*term, **decoded)) << text;
  }
}

TEST_F(EdbTest, GroundTermRejectsVariables) {
  auto term = Parse("f(X)");
  EXPECT_FALSE(codec_.EncodeGroundTerm(*term).ok());
}

TEST_F(EdbTest, FactStoreAndScan) {
  auto proc = store_.Declare("edge", 2, ProcedureMode::kFacts);
  ASSERT_TRUE(proc.ok());
  for (const char* f : {"edge(a, b)", "edge(a, c)", "edge(b, c)"}) {
    ASSERT_TRUE(store_.StoreFact(*proc, *Parse(f)).ok());
  }

  // Bound first argument.
  CallPattern pattern(2);
  pattern[0] = ArgSummary{ArgSummary::Kind::kAtom,
                          ExternalDictionary::HashOf("a", 0)};
  auto cursor = store_.OpenFactScan(*proc, pattern);
  ASSERT_TRUE(cursor.ok());
  int count = 0;
  while (true) {
    auto fact = cursor->Next();
    ASSERT_TRUE(fact.ok());
    if (*fact == nullptr) break;
    EXPECT_EQ(dict_.NameOf((**fact).args[0]->functor), "a");
    ++count;
  }
  EXPECT_EQ(count, 2);

  // Fully bound: exactly one.
  pattern[1] = ArgSummary{ArgSummary::Kind::kAtom,
                          ExternalDictionary::HashOf("c", 0)};
  auto exact = store_.OpenFactScan(*proc, pattern);
  ASSERT_TRUE(exact.ok());
  auto fact = exact->Next();
  ASSERT_TRUE(fact.ok());
  ASSERT_NE(*fact, nullptr);
  auto none = exact->Next();
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, nullptr);
}

TEST_F(EdbTest, FactStoreRejectsNonGround) {
  auto proc = store_.Declare("r", 1, ProcedureMode::kFacts);
  ASSERT_TRUE(proc.ok());
  EXPECT_FALSE(store_.StoreFact(*proc, *Parse("r(X)")).ok());
}

TEST_F(EdbTest, CompiledRuleStoreAndFetch) {
  auto proc = store_.Declare("p", 2, ProcedureMode::kCompiledRules);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(
      store_.StoreRuleCompiled(*proc, CompileOne("p(a, 1).")).ok());
  ASSERT_TRUE(
      store_.StoreRuleCompiled(*proc, CompileOne("p(b, 2).")).ok());
  ASSERT_TRUE(
      store_.StoreRuleCompiled(*proc, CompileOne("p(X, 3) :- q(X).")).ok());

  // No pattern: everything, in clause order.
  auto all = store_.FetchRules(*proc, nullptr, false);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);

  // Bound first arg 'a': clause 1 (key match) + clause 3 (var head).
  CallPattern pattern(2);
  pattern[0] = ArgSummary{ArgSummary::Kind::kAtom,
                          ExternalDictionary::HashOf("a", 0)};
  auto filtered = store_.FetchRules(*proc, &pattern, true);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->size(), 2u);
}

TEST_F(EdbTest, PreUnificationFiltersDeeperArgs) {
  auto proc = store_.Declare("m", 2, ProcedureMode::kCompiledRules);
  ASSERT_TRUE(proc.ok());
  // All clauses share the same first argument, differing in the second:
  // first-arg keys cannot discriminate, pre-unification must.
  ASSERT_TRUE(store_.StoreRuleCompiled(*proc, CompileOne("m(k, red).")).ok());
  ASSERT_TRUE(store_.StoreRuleCompiled(*proc, CompileOne("m(k, green).")).ok());
  ASSERT_TRUE(
      store_.StoreRuleCompiled(*proc, CompileOne("m(k, f(1)) :- t.")).ok());

  CallPattern pattern(2);
  pattern[0] = ArgSummary{ArgSummary::Kind::kAtom,
                          ExternalDictionary::HashOf("k", 0)};
  pattern[1] = ArgSummary{ArgSummary::Kind::kAtom,
                          ExternalDictionary::HashOf("green", 0)};
  store_.ResetStats();
  auto filtered = store_.FetchRules(*proc, &pattern, true);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->size(), 1u);
  EXPECT_EQ(store_.stats().preunify_filtered, 2u);

  // Without pre-unification, all three candidates ship.
  auto unfiltered = store_.FetchRules(*proc, &pattern, false);
  ASSERT_TRUE(unfiltered.ok());
  EXPECT_EQ(unfiltered->size(), 3u);

  // Struct second arg.
  pattern[1] = ArgSummary{ArgSummary::Kind::kStruct,
                          ExternalDictionary::HashOf("f", 1)};
  auto structs = store_.FetchRules(*proc, &pattern, true);
  ASSERT_TRUE(structs.ok());
  EXPECT_EQ(structs->size(), 1u);
}

TEST_F(EdbTest, PreUnifyIsNecessaryNotSufficient) {
  // Nested argument values are not checked: clauses may survive the
  // filter and still fail full unification (paper §4).
  const wam::ClauseCode code = CompileOne("w(g(1)).");
  auto bytes = codec_.EncodeClause(code);
  ASSERT_TRUE(bytes.ok());

  CallPattern pattern(1);
  pattern[0] = ArgSummary{ArgSummary::Kind::kStruct,
                          ExternalDictionary::HashOf("g", 1)};
  auto match = ClauseStore::PreUnify(*bytes, pattern);
  ASSERT_TRUE(match.ok());
  EXPECT_TRUE(*match);  // g(2) would also pass: only the functor is seen
}

TEST_F(EdbTest, LoaderCachesAndInvalidates) {
  auto proc = store_.Declare("lp", 1, ProcedureMode::kCompiledRules);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(store_.StoreRuleCompiled(*proc, CompileOne("lp(1).")).ok());

  Loader loader(&store_, &codec_);
  auto functor = dict_.Intern("lp", 1);
  ASSERT_TRUE(functor.ok());

  auto first = loader.Load(*proc, *functor);
  ASSERT_TRUE(first.ok());
  auto second = loader.Load(*proc, *functor);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // cache hit
  EXPECT_EQ(loader.stats().cache_hits, 1u);

  // Update invalidates.
  ASSERT_TRUE(store_.StoreRuleCompiled(*proc, CompileOne("lp(2).")).ok());
  auto third = loader.Load(*proc, *functor);
  ASSERT_TRUE(third.ok());
  EXPECT_NE(first->get(), third->get());
  EXPECT_EQ(loader.stats().loads, 2u);
}

TEST_F(EdbTest, LoaderAddsControlCode) {
  auto proc = store_.Declare("c3", 1, ProcedureMode::kCompiledRules);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(store_.StoreRuleCompiled(*proc, CompileOne("c3(a).")).ok());
  ASSERT_TRUE(store_.StoreRuleCompiled(*proc, CompileOne("c3(b).")).ok());
  ASSERT_TRUE(store_.StoreRuleCompiled(*proc, CompileOne("c3(X) :- v(X).")).ok());

  Loader loader(&store_, &codec_);
  auto functor = dict_.Intern("c3", 1);
  ASSERT_TRUE(functor.ok());
  auto linked = loader.Load(*proc, *functor);
  ASSERT_TRUE(linked.ok());
  const std::string text =
      wam::Disassemble(dict_, (*linked)->code, &(*linked)->tables);
  // The stored clauses had no control opcodes; the loader added them.
  EXPECT_NE(text.find("switch_on_term"), std::string::npos);
  EXPECT_NE(text.find("try"), std::string::npos);
}

TEST_F(EdbTest, SourceRulesStoredAsText) {
  auto proc = store_.Declare("sr", 1, ProcedureMode::kSourceRules);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(store_.StoreRuleSource(*proc, "sr(X) :- X > 0 .").ok());
  ASSERT_TRUE(store_.StoreRuleSource(*proc, "sr(0) .").ok());
  auto all = store_.FetchRules(*proc, nullptr, false);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  // Payloads are re-parseable text.
  auto parsed = reader::ParseTerm(&dict_, (*all)[0]);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
}

TEST_F(EdbTest, DeclareRejectsDuplicates) {
  ASSERT_TRUE(store_.Declare("dup", 1, ProcedureMode::kFacts).ok());
  EXPECT_FALSE(store_.Declare("dup", 1, ProcedureMode::kFacts).ok());
  // Same name, different arity is a different procedure.
  EXPECT_TRUE(store_.Declare("dup", 2, ProcedureMode::kFacts).ok());
}

TEST_F(EdbTest, FindByFunctor) {
  ASSERT_TRUE(store_.Declare("fx", 3, ProcedureMode::kFacts).ok());
  auto functor = dict_.Intern("fx", 3);
  ASSERT_TRUE(functor.ok());
  ProcedureInfo* info = store_.Find(*functor);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "fx");
  auto other = dict_.Intern("fx", 2);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(store_.Find(*other), nullptr);
}


TEST_F(EdbTest, CorruptStoredCodeRejected) {
  const wam::ClauseCode code = CompileOne("c(a) :- d(a).");
  auto bytes = codec_.EncodeClause(code);
  ASSERT_TRUE(bytes.ok());
  // Truncation at every prefix either fails cleanly or (for whole-
  // instruction prefixes) decodes a shorter clause — never crashes.
  for (size_t cut = 0; cut < bytes->size(); cut += 3) {
    auto decoded = codec_.DecodeClause(bytes->substr(0, cut));
    if (decoded.ok()) continue;
    EXPECT_EQ(decoded.status().code(), base::StatusCode::kCorruption);
  }
  // Garbage symbol hashes are NotFound, not UB.
  std::string garbage = *bytes;
  for (size_t i = 14; i + 8 <= garbage.size(); ++i) garbage[i] ^= 0x5a;
  auto decoded = codec_.DecodeClause(garbage);
  EXPECT_FALSE(decoded.ok());
}

TEST_F(EdbTest, CorruptStoredTermRejected) {
  auto bytes = codec_.EncodeGroundTerm(*Parse("f(g(1), [a])"));
  ASSERT_TRUE(bytes.ok());
  for (size_t cut = 0; cut < bytes->size(); ++cut) {
    auto decoded = codec_.DecodeTerm(bytes->substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST_F(EdbTest, KeyAttributeSelectionControlsClustering) {
  // Declaring key attrs {1} clusters on the second argument only.
  auto proc = store_.Declare("ka", 3, ProcedureMode::kFacts, {1});
  ASSERT_TRUE(proc.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store_
                    .StoreFact(*proc, *Parse("ka(x" + std::to_string(i) +
                                             ", grp" + std::to_string(i % 4) +
                                             ", " + std::to_string(i) + ")"))
                    .ok());
  }
  CallPattern pattern(3);
  pattern[1] = ArgSummary{ArgSummary::Kind::kAtom,
                          ExternalDictionary::HashOf("grp2", 0)};
  auto cursor = store_.OpenFactScan(*proc, pattern);
  ASSERT_TRUE(cursor.ok());
  int count = 0;
  while (true) {
    auto fact = cursor->Next();
    ASSERT_TRUE(fact.ok());
    if (*fact == nullptr) break;
    ++count;
  }
  EXPECT_EQ(count, 50);

  // Out-of-range key attribute is rejected at declaration.
  EXPECT_FALSE(store_.Declare("bad", 2, ProcedureMode::kFacts, {5}).ok());
}

}  // namespace
}  // namespace educe::edb
