#include <gtest/gtest.h>

#include <string>

#include "workloads/integrity.h"
#include "workloads/mvv.h"

namespace educe::workloads {
namespace {

TEST(MvvWorkloadTest, CardinalitiesMatchPaper) {
  MvvWorkload mvv;
  // Count generated facts per relation.
  auto count = [&](const std::string& prefix) {
    size_t n = 0, pos = 0;
    while ((pos = mvv.facts().find(prefix, pos)) != std::string::npos) {
      ++n;
      pos += prefix.size();
    }
    return n;
  };
  EXPECT_EQ(count("location2("), 2307u);
  EXPECT_EQ(count("schedule3("), 8776u);
  EXPECT_EQ(count("schedule2("), 7260u);
  EXPECT_EQ(mvv.class1_queries().size(), 10u);
  EXPECT_EQ(mvv.class2_queries().size(), 10u);
}

TEST(MvvWorkloadTest, QueriesHaveSolutions) {
  MvvWorkload::Config config;
  config.num_stops = 300;          // small instance for test speed
  config.schedule3_rows = 1200;
  config.schedule2_rows = 900;
  config.num_lines = 20;
  MvvWorkload mvv(config);

  Engine engine;
  ASSERT_TRUE(mvv.Setup(&engine, /*rules_external=*/false).ok());

  int class1_hits = 0;
  for (const std::string& q : mvv.class1_queries()) {
    auto ok = engine.Succeeds(q);
    ASSERT_TRUE(ok.ok()) << ok.status() << " for " << q;
    class1_hits += *ok ? 1 : 0;
  }
  EXPECT_GE(class1_hits, 8) << "adjacent-stop queries should mostly succeed";

  int class2_hits = 0;
  for (const std::string& q : mvv.class2_queries()) {
    auto ok = engine.Succeeds(q);
    ASSERT_TRUE(ok.ok()) << ok.status() << " for " << q;
    class2_hits += *ok ? 1 : 0;
  }
  EXPECT_GE(class2_hits, 5) << "one-change queries should often succeed";
}

TEST(MvvWorkloadTest, ModesAgreeOnASmallInstance) {
  MvvWorkload::Config config;
  config.num_stops = 120;
  config.schedule3_rows = 400;
  config.schedule2_rows = 300;
  config.num_lines = 10;
  MvvWorkload mvv(config);

  auto count_solutions = [&](RuleStorage mode, bool external) {
    EngineOptions options;
    options.rule_storage = mode;
    Engine engine(options);
    EXPECT_TRUE(mvv.Setup(&engine, external).ok());
    uint64_t total = 0;
    for (const std::string& q : mvv.class2_queries()) {
      auto n = engine.CountSolutions(q);
      EXPECT_TRUE(n.ok()) << n.status();
      total += n.ValueOr(0);
    }
    return total;
  };

  const uint64_t internal = count_solutions(RuleStorage::kCompiled, false);
  const uint64_t compiled = count_solutions(RuleStorage::kCompiled, true);
  const uint64_t source = count_solutions(RuleStorage::kSource, true);
  EXPECT_EQ(compiled, internal);
  EXPECT_EQ(source, internal);
}

TEST(IntegrityWorkloadTest, ShapeMatchesPaper) {
  IntegrityWorkload ic;
  auto count = [&](const std::string& text, const std::string& prefix) {
    size_t n = 0, pos = 0;
    while ((pos = text.find(prefix, pos)) != std::string::npos) {
      ++n;
      pos += prefix.size();
    }
    return n;
  };
  EXPECT_EQ(count(ic.facts(), "employee("), 4000u);
  EXPECT_EQ(count(ic.facts(), "dept_location("), 48u);  // the ~50x2 relation
  EXPECT_EQ(count(ic.constraints(), "constraint("),
            5u * 30u);  // 5 schemas x variants
  EXPECT_EQ(ic.updates().size(), 5u);
}

TEST(IntegrityWorkloadTest, PreprocessSpecialises) {
  IntegrityWorkload::Config config;
  config.employee_rows = 50;  // facts are not touched by preprocess anyway
  config.variants_per_constraint = 6;
  IntegrityWorkload ic(config);

  Engine engine;
  ASSERT_TRUE(ic.Setup(&engine, /*constraints_external=*/false).ok());

  // Preprocess never touches the fact relations.
  engine.ResetStats();
  std::vector<uint64_t> counts;
  for (int k = 0; k < 5; ++k) {
    auto first = engine.First("spec_count(" + ic.updates()[k] + ", N)");
    ASSERT_TRUE(first.ok()) << first.status();
    counts.push_back(std::stoull((*first)["N"]));
  }
  EXPECT_EQ(engine.Stats().clause_store.fact_rows_fetched, 0u)
      << "preprocess must not read facts";

  // Updates are ordered by increasing generality: u5 (all variables)
  // matches at least as many literals as the ground u1.
  EXPECT_GT(counts[4], counts[0]);
  EXPECT_GT(counts[4], 0u);
  // The fully-general update resolves against every employee literal:
  // schemas C1..C5 contribute 1+1+2+1+1 = 6 per variant.
  EXPECT_EQ(counts[4], 6u * 6u);
}

TEST(IntegrityWorkloadTest, ExternalAndInternalAgree) {
  IntegrityWorkload::Config config;
  config.employee_rows = 20;
  config.variants_per_constraint = 4;
  IntegrityWorkload ic(config);

  auto run = [&](bool external) {
    Engine engine;
    EXPECT_TRUE(ic.Setup(&engine, external).ok());
    std::vector<std::string> out;
    for (int k = 0; k < 5; ++k) {
      auto first = engine.First("spec_count(" + ic.updates()[k] + ", N)");
      EXPECT_TRUE(first.ok()) << first.status();
      out.push_back(first.ok() ? (*first)["N"] : "?");
    }
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace educe::workloads
