// Dispatch differential fuzzing (DESIGN.md §14): superinstruction fusion
// must be invisible — identical solution lists AND identical machine
// counters (instructions, calls, choice points, backtracks, trail) with
// fusion on vs off, over randomly generated stratified programs and over
// builtin/arithmetic/cut-heavy fixtures that hit every fused pair. The
// threaded-vs-switch axis is compile-time: CI runs this same binary in
// both EDUCE_THREADED_DISPATCH modes, so agreement across those runs is
// the cross-dispatch half of the differential.
//
// The second half fuzzes the stored-code decode path: an opcode byte
// rewritten to out-of-range, fused, or control values must be rejected
// as Corruption (fused opcodes are a link-time artifact and must never
// enter — or leave — the EDB).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "edb/code_codec.h"
#include "edb/external_dictionary.h"
#include "educe/engine.h"
#include "reader/parser.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"
#include "wam/builtins.h"
#include "wam/code.h"
#include "wam/program.h"

namespace educe {
namespace {

// ---------------------------------------------------------------------------
// Random stratified program generator (same scheme as differential_test:
// facts with occasional structured arguments, rules calling strictly
// lower predicates, queries with random boundness patterns).
// ---------------------------------------------------------------------------

struct GeneratedProgram {
  std::string text;
  std::vector<std::string> queries;
};

GeneratedProgram GenerateProgram(uint64_t seed) {
  base::Rng rng(seed);
  GeneratedProgram out;
  const int num_preds = 5;
  const int num_consts = 4;
  std::vector<int> arities;

  auto constant = [&](int c) { return "c" + std::to_string(c); };
  auto random_const = [&] {
    return constant(static_cast<int>(rng.Below(num_consts)));
  };

  for (int p = 0; p < num_preds; ++p) {
    const int arity = 1 + static_cast<int>(rng.Below(3));
    arities.push_back(arity);
    const std::string name = "p" + std::to_string(p);

    const int facts = 2 + static_cast<int>(rng.Below(5));
    for (int f = 0; f < facts; ++f) {
      out.text += name + "(";
      for (int a = 0; a < arity; ++a) {
        if (a) out.text += ", ";
        // Integers and structures alongside atoms: multi-constant heads
        // are what the get_constant/get_integer fusion pairs rewrite.
        const uint64_t kind = rng.Below(6);
        if (kind == 0) {
          out.text += "s(" + random_const() + ")";
        } else if (kind == 1) {
          out.text += std::to_string(rng.Below(5));
        } else {
          out.text += random_const();
        }
      }
      out.text += ").\n";
    }

    if (p > 0) {
      const int rules = 1 + static_cast<int>(rng.Below(2));
      for (int r = 0; r < rules; ++r) {
        const int body_len = 1 + static_cast<int>(rng.Below(2));
        std::vector<std::string> vars = {"X", "Y", "Z"};
        out.text += name + "(";
        for (int a = 0; a < arity; ++a) {
          if (a) out.text += ", ";
          out.text += rng.Below(3) == 0 ? random_const()
                                        : vars[rng.Below(vars.size())];
        }
        out.text += ") :- ";
        for (int b = 0; b < body_len; ++b) {
          if (b) out.text += ", ";
          const int callee = static_cast<int>(rng.Below(p));
          out.text += "p" + std::to_string(callee) + "(";
          for (int a = 0; a < arities[callee]; ++a) {
            if (a) out.text += ", ";
            out.text += rng.Below(4) == 0 ? random_const()
                                          : vars[rng.Below(vars.size())];
          }
          out.text += ")";
        }
        out.text += ".\n";
      }
    }
  }

  for (int p = 0; p < num_preds; ++p) {
    for (int q = 0; q < 3; ++q) {
      std::string query = "p" + std::to_string(p) + "(";
      const char* vars[] = {"A", "B", "C"};
      for (int a = 0; a < arities[p]; ++a) {
        if (a) query += ", ";
        query += rng.Below(2) == 0 ? vars[a] : random_const();
      }
      query += ")";
      out.queries.push_back(std::move(query));
    }
  }
  return out;
}

std::vector<std::string> EngineSolutions(Engine* engine,
                                         const std::string& query,
                                         int max_solutions) {
  auto q = engine->Query(query);
  EXPECT_TRUE(q.ok()) << q.status();
  std::vector<std::string> out;
  if (!q.ok()) return out;
  auto parsed = reader::ParseTerm(engine->dictionary(), query);
  while (static_cast<int>(out.size()) < max_solutions) {
    auto more = (*q)->Next();
    EXPECT_TRUE(more.ok()) << more.status() << " for " << query;
    if (!more.ok() || !*more) break;
    std::string rendered;
    for (const auto& [name, index] : parsed->var_names) {
      std::string b = (*q)->Binding(name);
      if (b.rfind("_G", 0) == 0) b = "_";
      rendered += b + "; ";
    }
    out.push_back(std::move(rendered));
  }
  return out;
}

/// The counters fusion must leave untouched. `instructions` is included
/// deliberately: fused handlers account for both halves (and a first-half
/// failure counts exactly one), so the count is invariant, not just the
/// solutions.
void ExpectSameMachineCounters(Engine* fused, Engine* plain,
                               const std::string& context) {
  const wam::MachineStats a = fused->Stats().machine;
  const wam::MachineStats b = plain->Stats().machine;
  EXPECT_EQ(a.instructions, b.instructions) << context;
  EXPECT_EQ(a.calls, b.calls) << context;
  EXPECT_EQ(a.choice_points, b.choice_points) << context;
  EXPECT_EQ(a.backtracks, b.backtracks) << context;
  EXPECT_EQ(a.trail_entries, b.trail_entries) << context;
}

class DispatchDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DispatchDifferentialTest, FusionIsInvisible) {
  const GeneratedProgram program = GenerateProgram(GetParam());
  constexpr int kMaxSolutions = 5000;

  Engine fused;  // superinstructions default on
  ASSERT_TRUE(fused.Consult(program.text).ok());
  EngineOptions plain_options;
  plain_options.superinstructions = false;
  Engine plain(plain_options);
  ASSERT_TRUE(plain.Consult(program.text).ok());

  // Same programs through the EDB: loader-linked compiled relative code,
  // fused vs not.
  EngineOptions edb_fused_options;
  edb_fused_options.rule_storage = RuleStorage::kCompiled;
  Engine edb_fused(edb_fused_options);
  ASSERT_TRUE(edb_fused.StoreRulesExternal(program.text).ok());
  EngineOptions edb_plain_options;
  edb_plain_options.rule_storage = RuleStorage::kCompiled;
  edb_plain_options.superinstructions = false;
  Engine edb_plain(edb_plain_options);
  ASSERT_TRUE(edb_plain.StoreRulesExternal(program.text).ok());

  for (const std::string& query : program.queries) {
    const std::vector<std::string> expected =
        EngineSolutions(&plain, query, kMaxSolutions);
    EXPECT_EQ(EngineSolutions(&fused, query, kMaxSolutions), expected)
        << "fused engine diverged on " << query << "\nprogram:\n"
        << program.text;
    EXPECT_EQ(EngineSolutions(&edb_plain, query, kMaxSolutions), expected)
        << "EDB unfused engine diverged on " << query;
    EXPECT_EQ(EngineSolutions(&edb_fused, query, kMaxSolutions), expected)
        << "EDB fused engine diverged on " << query;
  }
  ExpectSameMachineCounters(&fused, &plain, "in-memory, seed " +
                                                std::to_string(GetParam()));
  ExpectSameMachineCounters(&edb_fused, &edb_plain,
                            "EDB, seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchDifferentialTest,
                         ::testing::Values(11, 23, 37, 41, 59, 61, 73, 89,
                                           97, 1013));

TEST(DispatchDifferentialTest, FusedPairFixturesAgree) {
  // Hand-picked programs whose hot paths run every fused pair, including
  // first-half failures (backtracking over multi-integer facts), cut,
  // arithmetic builtins, floats, and deep list recursion.
  const char* kPrograms[] = {
      // get_integer/get_constant pairs + first-half failure on backtrack.
      "mix(1, 2, a). mix(1, 3, b). mix(4, 2, c). mix(red, 2, d).\n"
      "probe(X, Y) :- mix(X, 2, Y).\n",
      // get_list+unify_variable_x, unify pairs, recursion.
      "app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).\n"
      "rev([], []).\nrev([H|T], R) :- rev(T, S), app(S, [H], R).\n",
      // put_value+call pairs, environments, arithmetic, cut.
      "fact(0, 1) :- !.\nfact(N, F) :- N > 0, M is N - 1, fact(M, G), "
      "F is N * G.\n"
      "both(A, B, FA, FB) :- fact(A, FA), fact(B, FB).\n",
      // Floats (imm operands) and comparison builtins.
      "w(1.5). w(2.25). w(0.125).\n"
      "heavy(X) :- w(X), X > 1.0.\n",
  };
  const char* kQueries[] = {
      "probe(A, B)",
      "rev([a, b, c, d, e], R)",
      "both(5, 6, FA, FB)",
      "heavy(X)",
  };
  for (size_t i = 0; i < std::size(kPrograms); ++i) {
    Engine fused;
    ASSERT_TRUE(fused.Consult(kPrograms[i]).ok());
    EngineOptions plain_options;
    plain_options.superinstructions = false;
    Engine plain(plain_options);
    ASSERT_TRUE(plain.Consult(kPrograms[i]).ok());
    const std::vector<std::string> expected =
        EngineSolutions(&plain, kQueries[i], 1000);
    EXPECT_FALSE(expected.empty()) << kQueries[i];
    EXPECT_EQ(EngineSolutions(&fused, kQueries[i], 1000), expected)
        << kQueries[i];
    ExpectSameMachineCounters(&fused, &plain, kQueries[i]);
  }
}

TEST(DispatchDifferentialTest, FusionToggleMidSessionIsConsistent) {
  // Flipping EngineOptions::superinstructions on a live engine must
  // relink/invalidate cached code, never run stale streams.
  Engine engine;
  ASSERT_TRUE(engine.Consult("mix(1, 2). mix(1, 3). mix(4, 2).\n").ok());
  const std::vector<std::string> before =
      EngineSolutions(&engine, "mix(X, 2)", 100);
  engine.options().superinstructions = false;
  engine.SyncOptions();
  EXPECT_EQ(EngineSolutions(&engine, "mix(X, 2)", 100), before);
  engine.options().superinstructions = true;
  engine.SyncOptions();
  EXPECT_EQ(EngineSolutions(&engine, "mix(X, 2)", 100), before);
}

// ---------------------------------------------------------------------------
// Stored-code decode fuzzing: fused and control opcodes, out-of-range
// bytes, and truncation must all be rejected as Corruption.
// ---------------------------------------------------------------------------

class StoredCodeFuzzTest : public ::testing::Test {
 protected:
  StoredCodeFuzzTest()
      : pool_(&file_, 128),
        program_(&dict_),
        external_(std::move(edb::ExternalDictionary::Create(&pool_)).value()),
        codec_(&dict_, &external_, program_.builtins()) {
    EXPECT_TRUE(wam::InstallStandardLibrary(&program_).ok());
  }

  std::string EncodeOne(std::string_view clause_text) {
    auto read = reader::ParseTerm(&dict_, clause_text);
    EXPECT_TRUE(read.ok()) << read.status();
    auto compiled = program_.compiler()->Compile(read->term);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
    auto bytes = codec_.EncodeClause((*compiled)[0].code);
    EXPECT_TRUE(bytes.ok()) << bytes.status();
    return *bytes;
  }

  storage::PagedFile file_;
  storage::BufferPool pool_;
  dict::Dictionary dict_;
  wam::Program program_;
  edb::ExternalDictionary external_;
  edb::CodeCodec codec_;
};

TEST_F(StoredCodeFuzzTest, RejectsEveryIllegalOpcodeByte) {
  const std::string bytes = EncodeOne("p(a, 1, X) :- q(X).");
  // Layout: 18-byte header, then 12 bytes per instruction, opcode first.
  constexpr size_t kHeader = 18;
  constexpr size_t kStride = 12;
  ASSERT_EQ((bytes.size() - kHeader) % kStride, 0u);
  const size_t count = (bytes.size() - kHeader) / kStride;
  ASSERT_GT(count, 0u);
  size_t rejected = 0;
  for (size_t slot = 0; slot < count; ++slot) {
    for (int v = 0; v < 256; ++v) {
      std::string mutated = bytes;
      mutated[kHeader + slot * kStride] = static_cast<char>(v);
      auto decoded = codec_.DecodeClause(mutated);
      const bool out_of_range = v >= static_cast<int>(wam::kOpcodeCount);
      const bool fused =
          !out_of_range && wam::IsFusedOp(static_cast<wam::Opcode>(v));
      if (out_of_range || fused) {
        EXPECT_FALSE(decoded.ok())
            << "opcode byte " << v << " in slot " << slot << " accepted";
        ++rejected;
      }
      // Storable plain opcodes may or may not decode depending on the
      // operand reinterpretation — the requirement is only: no crash,
      // and never a fused/out-of-range op in the result.
      if (decoded.ok()) {
        for (const wam::Instruction& ins : decoded->code) {
          EXPECT_LT(static_cast<int>(ins.op),
                    static_cast<int>(wam::kOpcodeCount));
          EXPECT_FALSE(wam::IsFusedOp(ins.op));
        }
      }
    }
  }
  EXPECT_GT(rejected, 0u);
}

TEST_F(StoredCodeFuzzTest, RejectsTruncationAndLengthLies) {
  const std::string bytes = EncodeOne("p(a, b).");
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = codec_.DecodeClause(bytes.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes accepted";
  }
  // Appending garbage also breaks the declared-count/length equation.
  auto decoded = codec_.DecodeClause(bytes + std::string(7, '\xEE'));
  EXPECT_FALSE(decoded.ok());
  ASSERT_TRUE(codec_.DecodeClause(bytes).ok());
}

}  // namespace
}  // namespace educe
