// The adaptive memory governor (DESIGN.md §12): clamp math at hostile
// budgets, the pure cost model's attribution and hysteresis, and the
// engine-level behaviours — rebalance frequency bounded by the interval,
// and split changes racing concurrent worker sessions (run under TSan
// via scripts/check_sanitizers.sh thread).

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "educe/engine.h"
#include "educe/memory_governor.h"

namespace educe {
namespace {

constexpr uint32_t kPage = 4096;

GovernorOptions DefaultOptions() { return GovernorOptions{}; }

TEST(GovernorClampTest, ScalesFloorsWhenBudgetBelowTheirSum) {
  GovernorOptions options = DefaultOptions();
  options.pool_floor_bytes = 64 << 10;
  options.cache_floor_bytes = 256 << 10;
  const uint64_t budget = 96 << 10;  // < 320 KiB of floors

  const auto split = MemoryGovernor::ClampSplit(0, budget, options, kPage);
  // Floors shrink proportionally: both stores keep a share, nothing
  // underflows, and the split still honours the pool's two-page minimum.
  EXPECT_GE(split.pool_bytes, 2u * kPage);
  EXPECT_EQ(split.pool_bytes % kPage, 0u);
  EXPECT_GT(split.cache_bytes, 0u);
  EXPECT_LE(split.pool_bytes + split.cache_bytes, budget + kPage);
}

TEST(GovernorClampTest, TinyBudgetKeepsStructuralPoolMinimum) {
  GovernorOptions options = DefaultOptions();
  const uint64_t budget = 1024;  // below even one page

  const auto split = MemoryGovernor::ClampSplit(0, budget, options, kPage);
  // The pool cannot function under two frames; the cache absorbs the
  // shortfall by saturating to zero rather than wrapping around.
  EXPECT_EQ(split.pool_bytes, 2u * kPage);
  EXPECT_EQ(split.cache_bytes, 0u);
}

TEST(GovernorClampTest, CapsBoundEachStore) {
  GovernorOptions options = DefaultOptions();
  options.pool_floor_bytes = 8 << 10;
  options.cache_floor_bytes = 8 << 10;
  options.pool_cap_bytes = 64 << 10;
  options.cache_cap_bytes = 128 << 10;
  const uint64_t budget = 1 << 20;

  // A pool-greedy target stops at the pool cap; the cache's grant stops
  // at its own cap, leaving the rest of the budget unspent.
  const auto split = MemoryGovernor::ClampSplit(budget, budget, options, kPage);
  EXPECT_LE(split.pool_bytes, options.pool_cap_bytes);
  EXPECT_LE(split.cache_bytes, options.cache_cap_bytes);
}

MemoryGovernor::WindowInputs IdleWindow(uint64_t budget) {
  MemoryGovernor::WindowInputs in;
  in.window_retirements = 32;
  in.pool_capacity_bytes = budget / 2;
  in.cache_capacity_bytes = budget - budget / 2;
  in.pool_resident_bytes = in.pool_capacity_bytes;
  in.cache_resident_bytes = in.cache_capacity_bytes;
  return in;
}

TEST(GovernorDecideTest, NoPressureMovesNothing) {
  const uint64_t budget = 1 << 20;
  const auto d = MemoryGovernor::Decide(IdleWindow(budget), budget,
                                        DefaultOptions(), kPage);
  EXPECT_EQ(d.pool_benefit_ns_per_byte, 0.0);
  EXPECT_EQ(d.cache_benefit_ns_per_byte, 0.0);
  EXPECT_EQ(d.bytes_moved, 0);
}

TEST(GovernorDecideTest, CacheThrashGrowsCache) {
  const uint64_t budget = 1 << 20;
  GovernorOptions options = DefaultOptions();
  options.pool_floor_bytes = 8 << 10;
  options.cache_floor_bytes = 8 << 10;
  auto in = IdleWindow(budget);
  in.cache_misses = 200;
  in.cache_evictions = 180;
  in.decode_ns = 5'000'000;
  in.link_ns = 2'000'000;

  const auto d = MemoryGovernor::Decide(in, budget, options, kPage);
  EXPECT_GT(d.cache_benefit_ns_per_byte, 0.0);
  EXPECT_EQ(d.pool_benefit_ns_per_byte, 0.0);
  EXPECT_GT(d.bytes_moved, 0);  // pool -> cache
  EXPECT_LT(d.pool_target_bytes, in.pool_capacity_bytes);
}

TEST(GovernorDecideTest, RuleFetchTimeIsBilledToTheCache) {
  // The deadlock case the attribution exists for: every code-cache miss
  // refetches clause-payload pages, so the pool shows misses, evictions
  // and a large page_read_ns — but all of that read time happened inside
  // the EDB rule-fetch path. The cache must win this window; billing the
  // reads to the pool would stall the split while the cache thrashes.
  const uint64_t budget = 1 << 20;
  auto in = IdleWindow(budget);
  in.pool_misses = 400;
  in.pool_evictions = 350;
  in.page_read_ns = 20'000'000;
  in.rule_fetch_ns = 19'500'000;  // nearly all of it
  in.cache_misses = 200;
  in.cache_evictions = 180;
  in.decode_ns = 3'000'000;
  in.link_ns = 1'000'000;

  const auto d = MemoryGovernor::Decide(in, budget, DefaultOptions(), kPage);
  EXPECT_GT(d.cache_benefit_ns_per_byte,
            d.pool_benefit_ns_per_byte * DefaultOptions().hysteresis);
  EXPECT_GT(d.bytes_moved, 0);
}

TEST(GovernorDecideTest, HysteresisHoldsNearTies) {
  const uint64_t budget = 1 << 20;
  auto in = IdleWindow(budget);
  // Both stores under pressure with benefits within the 1.25x band.
  in.pool_misses = 100;
  in.pool_evictions = 100;
  in.page_read_ns = 5'000'000;
  in.cache_misses = 100;
  in.cache_evictions = 100;
  in.decode_ns = 5'500'000;

  const auto d = MemoryGovernor::Decide(in, budget, DefaultOptions(), kPage);
  EXPECT_GT(d.pool_benefit_ns_per_byte, 0.0);
  EXPECT_GT(d.cache_benefit_ns_per_byte, 0.0);
  EXPECT_EQ(d.bytes_moved, 0);
}

std::string NumFacts(int n) {
  std::ostringstream out;
  for (int i = 0; i < n; ++i) out << "num(" << i << ", " << i * 3 << ").\n";
  return out.str();
}

TEST(GovernorEngineTest, BudgetBelowFloorsStillWorks) {
  EngineOptions options;
  options.memory_budget_bytes = 32 << 10;  // under the default floors' sum
  Engine engine(options);
  ASSERT_NE(engine.governor(), nullptr);

  ASSERT_TRUE(engine.StoreFactsExternal(NumFacts(50)).ok());
  ASSERT_TRUE(engine.StoreRulesExternal("twice(X, Y) :- num(X, Y).").ok());
  auto count = engine.CountSolutions("twice(X, Y)");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(*count, 50u);

  const auto split = engine.governor()->CurrentSplit();
  EXPECT_GE(split.pool_bytes, 2u * engine.buffer_pool()->page_size());
  engine.governor()->ForceRebalance();  // must not underflow either store
  const auto after = engine.governor()->CurrentSplit();
  EXPECT_GE(after.pool_bytes, 2u * engine.buffer_pool()->page_size());
}

TEST(GovernorEngineTest, RebalanceFrequencyBoundedByInterval) {
  EngineOptions options;
  options.memory_budget_bytes = 256 << 10;
  options.governor.rebalance_interval = 8;
  options.governor.pool_floor_bytes = 16 << 10;
  options.governor.cache_floor_bytes = 16 << 10;
  Engine engine(options);
  ASSERT_NE(engine.governor(), nullptr);

  ASSERT_TRUE(engine.StoreFactsExternal(NumFacts(200)).ok());
  ASSERT_TRUE(engine.StoreRulesExternal("twice(X, Y) :- num(X, Y).").ok());

  // An oscillating workload: alternate fact-scan and rule queries so the
  // two stores keep trading pressure.
  constexpr int kQueries = 64;
  for (int i = 0; i < kQueries; ++i) {
    auto count = engine.CountSolutions(i % 2 == 0 ? "num(X, Y)"
                                                  : "twice(X, Y)");
    ASSERT_TRUE(count.ok()) << count.status();
  }
  MemoryGovernor& gov = *engine.governor();
  // The structural bound — a decision only when the retirement counter
  // crosses the interval — holds regardless of what the cost model wants
  // to do with the oscillation: exactly one crossing per 8 retirements.
  const uint64_t before = gov.decisions();
  for (int i = 0; i < 64; ++i) gov.NoteRetirement();
  EXPECT_EQ(gov.decisions() - before, 64u / 8);
  EXPECT_LE(gov.rebalances(), gov.decisions());
}

TEST(GovernorEngineTest, RebalanceRacesWorkerSessionsCleanly) {
  EngineOptions options;
  options.memory_budget_bytes = 128 << 10;
  options.governor.rebalance_interval = 4;  // rebalance often
  options.governor.pool_floor_bytes = 16 << 10;
  options.governor.cache_floor_bytes = 16 << 10;
  Engine engine(options);
  ASSERT_NE(engine.governor(), nullptr);

  ASSERT_TRUE(engine.StoreFactsExternal(NumFacts(100)).ok());
  ASSERT_TRUE(engine.StoreRulesExternal("twice(X, Y) :- num(X, Y).").ok());

  constexpr int kThreads = 4;
  constexpr int kRounds = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    auto session = engine.OpenSession();
    ASSERT_TRUE(session.ok()) << session.status();
    threads.emplace_back([&failures, s = std::move(*session)]() mutable {
      for (int round = 0; round < kRounds; ++round) {
        auto count = s->CountSolutions(round % 2 == 0 ? "num(X, Y)"
                                                      : "twice(X, Y)");
        if (!count.ok() || *count != 100u) ++failures;
      }
    });
  }
  // Force decision windows from this thread while the workers' own
  // retirements trigger more: pool resizes and cache SetLimits race
  // live fetches and loads.
  for (int i = 0; i < 50; ++i) engine.governor()->ForceRebalance();
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const auto split = engine.governor()->CurrentSplit();
  EXPECT_GE(split.pool_bytes, 2u * engine.buffer_pool()->page_size());
}

}  // namespace
}  // namespace educe
