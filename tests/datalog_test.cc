// Bottom-up Datalog (DESIGN.md §15), both layers:
//   - rel::datalog: validation, stratification, semi-naive vs naive
//     differentials on seeded recursive programs, magic-set rewriting.
//   - educe::DatalogManager: WAM differentials (identical solution sets),
//     strategy selection, plan caching + push invalidation on edb_assert,
//     the materialized Solutions mode, and the fallback contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "educe/datalog.h"
#include "educe/engine.h"
#include "rel/datalog.h"
#include "workloads/graph.h"

namespace educe {
namespace {

namespace rdl = rel::datalog;
using workloads::GraphWorkload;

// ---------------------------------------------------------------------------
// rel::datalog layer
// ---------------------------------------------------------------------------

rdl::Program ClosureProgram(uint32_t* edge_out, uint32_t* path_out) {
  rdl::Program program;
  const uint32_t edge = program.AddPred("edge", 2, /*edb=*/true);
  const uint32_t path = program.AddPred("path", 2, /*edb=*/false);
  using T = rdl::Term;
  // path(X, Y) :- edge(X, Y).
  program.rules.push_back(
      {rdl::Atom{path, false, {T::Var(0), T::Var(1)}},
       {rdl::Atom{edge, false, {T::Var(0), T::Var(1)}}}});
  // path(X, Y) :- path(X, Z), edge(Z, Y).
  program.rules.push_back(
      {rdl::Atom{path, false, {T::Var(0), T::Var(1)}},
       {rdl::Atom{path, false, {T::Var(0), T::Var(2)}},
        rdl::Atom{edge, false, {T::Var(2), T::Var(1)}}}});
  *edge_out = edge;
  *path_out = path;
  return program;
}

rdl::Evaluator::EdbLoader EdgeLoader(uint32_t edge_pred,
                                     const std::vector<GraphWorkload::Edge>&
                                         edges) {
  return [edge_pred, &edges](uint32_t pred, uint32_t width,
                             const rdl::Evaluator::EmitFn& emit) {
    if (pred != edge_pred) {
      return base::Status::InvalidArgument("unexpected EDB pred");
    }
    EXPECT_EQ(width, 2u);
    for (const auto& e : edges) {
      const int64_t row[2] = {e.first, e.second};
      base::Status status = emit(row);
      if (!status.ok()) return status;
    }
    return base::Status::OK();
  };
}

std::vector<std::vector<int64_t>> SortedTuples(const rdl::Evaluator& eval,
                                               uint32_t pred) {
  std::vector<std::vector<int64_t>> tuples = eval.Tuples(pred);
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

TEST(DatalogIrTest, ValidateRejectsUnboundHeadVariable) {
  rdl::Program program;
  const uint32_t e = program.AddPred("e", 2, true);
  const uint32_t p = program.AddPred("p", 2, false);
  using T = rdl::Term;
  // p(X, Y) :- e(X, X).  — Y never bound.
  program.rules.push_back({rdl::Atom{p, false, {T::Var(0), T::Var(1)}},
                           {rdl::Atom{e, false, {T::Var(0), T::Var(0)}}}});
  EXPECT_FALSE(rdl::Validate(program).ok());
}

TEST(DatalogIrTest, ValidateRejectsEdbHead) {
  rdl::Program program;
  const uint32_t e = program.AddPred("e", 1, true);
  using T = rdl::Term;
  program.rules.push_back({rdl::Atom{e, false, {T::Const(1)}}, {}});
  EXPECT_FALSE(rdl::Validate(program).ok());
}

TEST(DatalogIrTest, StratifyRejectsNegationInCycle) {
  rdl::Program program;
  const uint32_t e = program.AddPred("e", 1, true);
  const uint32_t p = program.AddPred("p", 1, false);
  const uint32_t q = program.AddPred("q", 1, false);
  using T = rdl::Term;
  // p(X) :- e(X), \+ q(X).   q(X) :- e(X), p(X).  — p and q share an SCC
  // through a negated edge: not stratifiable.
  program.rules.push_back({rdl::Atom{p, false, {T::Var(0)}},
                           {rdl::Atom{e, false, {T::Var(0)}},
                            rdl::Atom{q, true, {T::Var(0)}}}});
  program.rules.push_back({rdl::Atom{q, false, {T::Var(0)}},
                           {rdl::Atom{e, false, {T::Var(0)}},
                            rdl::Atom{p, false, {T::Var(0)}}}});
  ASSERT_TRUE(rdl::Validate(program).ok());
  EXPECT_FALSE(rdl::Stratify(program).ok());
}

TEST(DatalogIrTest, ChainClosureCountsAndDeltas) {
  uint32_t edge = 0, path = 0;
  const rdl::Program program = ClosureProgram(&edge, &path);
  const std::vector<GraphWorkload::Edge> edges = GraphWorkload::Chain(10);
  rdl::Evaluator eval(&program, {});
  ASSERT_TRUE(eval.Run(EdgeLoader(edge, edges)).ok());
  // 10-node chain: path count = 10*9/2 = 45.
  EXPECT_EQ(eval.TupleCount(path), 45u);
  EXPECT_EQ(eval.stats().edb_rows, 9u);
  EXPECT_EQ(eval.stats().tuples_derived, 45u);
  // Semi-naive on a chain: each round extends the frontier by one hop, so
  // the delta sizes shrink monotonically to zero.
  const auto& deltas = eval.stats().delta_sizes;
  ASSERT_GE(deltas.size(), 2u);
  EXPECT_EQ(deltas.back(), 0u);  // final round proves the fixpoint
  for (size_t i = 1; i < deltas.size(); ++i) {
    EXPECT_LE(deltas[i], deltas[i - 1]);
  }
}

TEST(DatalogIrTest, SemiNaiveMatchesNaiveOnSeededPrograms) {
  using T = rdl::Term;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    // Closure plus a mutually recursive pair over a random DAG.
    rdl::Program program;
    const uint32_t edge = program.AddPred("edge", 2, true);
    const uint32_t path = program.AddPred("path", 2, false);
    const uint32_t p = program.AddPred("p", 2, false);
    const uint32_t q = program.AddPred("q", 2, false);
    program.rules.push_back(
        {rdl::Atom{path, false, {T::Var(0), T::Var(1)}},
         {rdl::Atom{edge, false, {T::Var(0), T::Var(1)}}}});
    program.rules.push_back(
        {rdl::Atom{path, false, {T::Var(0), T::Var(1)}},
         {rdl::Atom{path, false, {T::Var(0), T::Var(2)}},
          rdl::Atom{edge, false, {T::Var(2), T::Var(1)}}}});
    // p(X,Y) :- edge(X,Y).  p(X,Y) :- edge(X,Z), q(Z,Y).
    // q(X,Y) :- edge(X,Z), p(Z,Y).  — even/odd-hop mutual recursion.
    program.rules.push_back(
        {rdl::Atom{p, false, {T::Var(0), T::Var(1)}},
         {rdl::Atom{edge, false, {T::Var(0), T::Var(1)}}}});
    program.rules.push_back(
        {rdl::Atom{p, false, {T::Var(0), T::Var(1)}},
         {rdl::Atom{edge, false, {T::Var(0), T::Var(2)}},
          rdl::Atom{q, false, {T::Var(2), T::Var(1)}}}});
    program.rules.push_back(
        {rdl::Atom{q, false, {T::Var(0), T::Var(1)}},
         {rdl::Atom{edge, false, {T::Var(0), T::Var(2)}},
          rdl::Atom{p, false, {T::Var(2), T::Var(1)}}}});

    const std::vector<GraphWorkload::Edge> edges =
        GraphWorkload::RandomDag(12 + seed % 5, 28 + 2 * seed, seed);

    rdl::EvalOptions semi;
    semi.semi_naive = true;
    rdl::EvalOptions naive;
    naive.semi_naive = false;
    rdl::Evaluator semi_eval(&program, semi);
    rdl::Evaluator naive_eval(&program, naive);
    ASSERT_TRUE(semi_eval.Run(EdgeLoader(edge, edges)).ok()) << "seed " << seed;
    ASSERT_TRUE(naive_eval.Run(EdgeLoader(edge, edges)).ok())
        << "seed " << seed;
    for (uint32_t pred : {path, p, q}) {
      EXPECT_EQ(SortedTuples(semi_eval, pred), SortedTuples(naive_eval, pred))
          << "seed " << seed << " pred " << pred;
    }
    // Naive re-derives everything each round; its duplicate count must
    // strictly dominate once the fixpoint needs more than one round.
    if (semi_eval.stats().iterations > 2) {
      EXPECT_GT(naive_eval.stats().dedup_hits, semi_eval.stats().dedup_hits)
          << "seed " << seed;
    }
  }
}

TEST(DatalogIrTest, StratifiedNegation) {
  rdl::Program program;
  const uint32_t node = program.AddPred("node", 1, true);
  const uint32_t edge = program.AddPred("edge", 2, true);
  const uint32_t path = program.AddPred("path", 2, false);
  const uint32_t unreached = program.AddPred("unreached", 1, false);
  using T = rdl::Term;
  program.rules.push_back(
      {rdl::Atom{path, false, {T::Var(0), T::Var(1)}},
       {rdl::Atom{edge, false, {T::Var(0), T::Var(1)}}}});
  program.rules.push_back(
      {rdl::Atom{path, false, {T::Var(0), T::Var(1)}},
       {rdl::Atom{path, false, {T::Var(0), T::Var(2)}},
        rdl::Atom{edge, false, {T::Var(2), T::Var(1)}}}});
  // unreached(X) :- node(X), \+ path(0, X).
  program.rules.push_back(
      {rdl::Atom{unreached, false, {T::Var(0)}},
       {rdl::Atom{node, false, {T::Var(0)}},
        rdl::Atom{path, true, {T::Const(0), T::Var(0)}}}});

  const std::vector<GraphWorkload::Edge> edges = GraphWorkload::Chain(5);
  auto loader = [&](uint32_t pred, uint32_t width,
                    const rdl::Evaluator::EmitFn& emit) {
    if (pred == node) {
      for (int64_t i = 0; i < 5; ++i) {
        const int64_t row[1] = {i};
        base::Status status = emit(row);
        if (!status.ok()) return status;
      }
      return base::Status::OK();
    }
    return EdgeLoader(edge, edges)(pred, width, emit);
  };
  rdl::Evaluator eval(&program, {});
  ASSERT_TRUE(eval.Run(loader).ok());
  // path(0, ·) reaches 1..4, so only node 0 is unreached from 0.
  EXPECT_EQ(SortedTuples(eval, unreached),
            (std::vector<std::vector<int64_t>>{{0}}));
}

TEST(DatalogIrTest, MagicRewriteDerivesStrictlyFewerTuples) {
  uint32_t edge = 0, path = 0;
  const rdl::Program program = ClosureProgram(&edge, &path);
  // Two disjoint chains: the closure from node 0 never enters the second
  // component, so a magic-bound evaluation must skip it entirely.
  std::vector<GraphWorkload::Edge> edges = GraphWorkload::Chain(8);
  for (const auto& e : GraphWorkload::Chain(8)) {
    edges.emplace_back(e.first + 100, e.second + 100);
  }

  rdl::Evaluator full(&program, {});
  ASSERT_TRUE(full.Run(EdgeLoader(edge, edges)).ok());

  auto rewritten = rdl::MagicRewrite(program, path, {true, false});
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  ASSERT_NE(rewritten->seed_pred, rdl::kNoPred);
  auto loader = [&](uint32_t pred, uint32_t width,
                    const rdl::Evaluator::EmitFn& emit) {
    if (pred == rewritten->seed_pred) {
      const int64_t row[1] = {0};
      return emit(row);
    }
    return EdgeLoader(0, edges)(0, width, emit);  // every other EDB is edge
  };
  rdl::Evaluator magic(&rewritten->program, {});
  ASSERT_TRUE(magic.Run(loader).ok());

  // The bound query answers: exactly the 7 tuples path(0, 1..7).
  std::vector<std::vector<int64_t>> expected;
  for (int64_t j = 1; j <= 7; ++j) expected.push_back({0, j});
  EXPECT_EQ(SortedTuples(magic, rewritten->query_pred), expected);
  // And it derives strictly fewer tuples than the full closure (which
  // also computes every suffix path and the second component).
  EXPECT_LT(magic.stats().tuples_derived, full.stats().tuples_derived);
  EXPECT_EQ(full.TupleCount(path), 2u * 28u);
}

TEST(DatalogIrTest, MagicRewriteAllFreeIsIdentity) {
  uint32_t edge = 0, path = 0;
  const rdl::Program program = ClosureProgram(&edge, &path);
  auto rewritten = rdl::MagicRewrite(program, path, {false, false});
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->seed_pred, rdl::kNoPred);
  EXPECT_EQ(rewritten->program.rules.size(), program.rules.size());
}

// ---------------------------------------------------------------------------
// Engine bridge
// ---------------------------------------------------------------------------

// All solutions of `goal`, each rendered "X=v,Y=w", deduplicated (the
// bottom-up path has set semantics; the WAM side may repeat solutions).
std::set<std::string> SolutionSet(Engine* engine, std::string_view goal,
                                  int max = 200000) {
  std::set<std::string> out;
  auto solutions = engine->Query(goal);
  EXPECT_TRUE(solutions.ok()) << goal << ": " << solutions.status();
  if (!solutions.ok()) return out;
  for (int i = 0; i < max; ++i) {
    auto more = (*solutions)->Next();
    EXPECT_TRUE(more.ok()) << goal << ": " << more.status();
    if (!more.ok() || !*more) break;
    std::string row;
    for (const auto& [name, value] : (*solutions)->All()) {
      if (!row.empty()) row += ",";
      row += name + "=" + value;
    }
    out.insert(row);
  }
  return out;
}

struct EnginePair {
  Engine wam;       // datalog off: plain top-down oracle
  Engine bottom_up;  // datalog on

  EnginePair()
      : wam(EngineOptions{}), bottom_up([] {
          EngineOptions options;
          options.datalog = true;
          return options;
        }()) {}

  // Same facts and rules on both sides.
  void LoadEdges(const std::vector<GraphWorkload::Edge>& edges) {
    ASSERT_TRUE(GraphWorkload::StoreEdges(&wam, "edge", edges).ok());
    ASSERT_TRUE(GraphWorkload::StoreEdges(&bottom_up, "edge", edges).ok());
  }
  void ConsultBoth(const std::string& rules) {
    ASSERT_TRUE(wam.Consult(rules).ok());
    ASSERT_TRUE(bottom_up.Consult(rules).ok());
  }
  void ExpectSameSolutions(std::string_view goal) {
    EXPECT_EQ(SolutionSet(&bottom_up, goal), SolutionSet(&wam, goal)) << goal;
  }
};

// Right-recursive closure: terminates top-down on DAGs, so the WAM side
// can serve as the oracle. (The bottom-up side is insensitive to rule
// form.)
const char kClosureRules[] =
    "path(X, Y) :- edge(X, Y).\n"
    "path(X, Y) :- edge(X, Z), path(Z, Y).\n";

TEST(DatalogEngineTest, ClosureMatchesWamOnAllCallPatterns) {
  EnginePair pair;
  pair.LoadEdges(GraphWorkload::RandomDag(14, 30, 42));
  pair.ConsultBoth(kClosureRules);
  pair.ExpectSameSolutions("path(X, Y)");
  pair.ExpectSameSolutions("path(0, Y)");
  pair.ExpectSameSolutions("path(X, 13)");
  pair.ExpectSameSolutions("path(X, X)");   // repeated-variable call
  pair.ExpectSameSolutions("path(0, 13)");  // ground call (set semantics)
  pair.ExpectSameSolutions("path(97, X)");  // empty answer

  const DatalogStats stats = pair.bottom_up.Stats().datalog;
  EXPECT_GE(stats.queries_bottom_up, 6u);
  EXPECT_GT(stats.tuples_derived, 0u);
  // Each evaluation feeds the EDB through the bulk fact scan.
  EXPECT_GT(pair.bottom_up.Stats().clause_store.bulk_fact_scans, 0u);
  EXPECT_GT(pair.bottom_up.Stats().clause_store.bulk_fact_rows, 0u);
}

TEST(DatalogEngineTest, SeededDifferentialsMatchWam) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    EnginePair pair;
    const uint64_t nodes = 10 + seed % 6;
    pair.LoadEdges(GraphWorkload::RandomDag(nodes, 2 * nodes + seed, seed));
    pair.ConsultBoth(kClosureRules);
    pair.ExpectSameSolutions("path(X, Y)");
    pair.ExpectSameSolutions("path(1, Y)");
    pair.ExpectSameSolutions("path(X, 5)");
    EXPECT_GE(pair.bottom_up.Stats().datalog.queries_bottom_up, 3u)
        << "seed " << seed;
  }
}

TEST(DatalogEngineTest, AutoDeclinesNonRecursiveUntilForced) {
  EnginePair pair;
  pair.LoadEdges(GraphWorkload::Chain(6));
  pair.ConsultBoth("hop2(X, Y) :- edge(X, Z), edge(Z, Y).\n");
  // kAuto: eligible but not recursive — stays on the WAM.
  pair.ExpectSameSolutions("hop2(X, Y)");
  EXPECT_EQ(pair.bottom_up.Stats().datalog.queries_bottom_up, 0u);
  EXPECT_GE(pair.bottom_up.Stats().datalog.queries_fallback, 1u);
  // Forcing bottom-up flips it, with the same answers.
  pair.bottom_up.datalog_manager()->SetStrategy("hop2", 2,
                                                DatalogStrategy::kBottomUp);
  pair.ExpectSameSolutions("hop2(X, Y)");
  EXPECT_GE(pair.bottom_up.Stats().datalog.queries_bottom_up, 1u);
  // And kWam forces it back.
  pair.bottom_up.datalog_manager()->SetStrategy("hop2", 2,
                                                DatalogStrategy::kWam);
  const uint64_t before = pair.bottom_up.Stats().datalog.queries_bottom_up;
  pair.ExpectSameSolutions("hop2(X, Y)");
  EXPECT_EQ(pair.bottom_up.Stats().datalog.queries_bottom_up, before);
}

TEST(DatalogEngineTest, OutOfRangeProceduresFallBack) {
  EngineOptions options;
  options.datalog = true;
  Engine engine(options);
  ASSERT_TRUE(engine
                  .Consult("p(1). p(2). p(3).\n"
                           "big(X) :- p(X), X > 1.\n"            // comparison
                           "double(X, Y) :- p(X), Y is X * 2.\n"  // arithmetic
                           "first(X) :- p(X), !.\n")              // cut
                  .ok());
  engine.datalog_manager()->SetStrategy("big", 1, DatalogStrategy::kBottomUp);
  engine.datalog_manager()->SetStrategy("double", 2,
                                        DatalogStrategy::kBottomUp);
  engine.datalog_manager()->SetStrategy("first", 1,
                                        DatalogStrategy::kBottomUp);
  // All three are out of Datalog range: answers still come from the WAM.
  EXPECT_EQ(SolutionSet(&engine, "big(X)"),
            (std::set<std::string>{"X=2", "X=3"}));
  EXPECT_EQ(SolutionSet(&engine, "double(2, Y)"),
            (std::set<std::string>{"Y=4"}));
  EXPECT_EQ(SolutionSet(&engine, "first(X)"), (std::set<std::string>{"X=1"}));
  // Float goal arguments are out of range too (no float encoding).
  EXPECT_EQ(SolutionSet(&engine, "p(1.5)"), (std::set<std::string>{}));
  const DatalogStats stats = engine.Stats().datalog;
  EXPECT_EQ(stats.queries_bottom_up, 0u);
  EXPECT_GE(stats.queries_fallback, 4u);
}

TEST(DatalogEngineTest, AssertInvalidatesCompiledPlans) {
  EngineOptions options;
  options.datalog = true;
  Engine engine(options);
  ASSERT_TRUE(
      GraphWorkload::StoreEdges(&engine, "edge", GraphWorkload::Chain(4))
          .ok());
  ASSERT_TRUE(engine.Consult(kClosureRules).ok());

  EXPECT_EQ(SolutionSet(&engine, "path(0, Y)"),
            (std::set<std::string>{"Y=1", "Y=2", "Y=3"}));
  const DatalogStats before = engine.Stats().datalog;
  EXPECT_GE(before.plans_compiled, 1u);

  // A cached plan must not survive an EDB mutation: extend the chain via
  // edb_assert (served by the WAM builtin, routed around the bottom-up
  // path) and the next query must see the new edge.
  auto assert_ok = engine.Succeeds("edb_assert(edge(3, 4))");
  ASSERT_TRUE(assert_ok.ok()) << assert_ok.status();
  ASSERT_TRUE(*assert_ok);
  EXPECT_EQ(SolutionSet(&engine, "path(0, Y)"),
            (std::set<std::string>{"Y=1", "Y=2", "Y=3", "Y=4"}));
  const DatalogStats after = engine.Stats().datalog;
  EXPECT_GE(after.plans_invalidated, 1u);
  EXPECT_GT(after.plans_compiled, before.plans_compiled);
}

TEST(DatalogEngineTest, PlanCacheHitsOnRepeatedCallPattern) {
  EngineOptions options;
  options.datalog = true;
  Engine engine(options);
  ASSERT_TRUE(
      GraphWorkload::StoreEdges(&engine, "edge", GraphWorkload::Chain(6))
          .ok());
  ASSERT_TRUE(engine.Consult(kClosureRules).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(SolutionSet(&engine, "path(0, Y)").empty());
  }
  const DatalogStats stats = engine.Stats().datalog;
  EXPECT_EQ(stats.plans_compiled, 1u);
  EXPECT_GE(stats.plan_cache_hits, 2u);
}

TEST(DatalogEngineTest, MagicBoundQueryDerivesFewerTuples) {
  // Two disjoint chains; a bound query from the first component must not
  // derive tuples in the second.
  std::vector<GraphWorkload::Edge> edges = GraphWorkload::Chain(12);
  for (const auto& e : GraphWorkload::Chain(12)) {
    edges.emplace_back(e.first + 1000, e.second + 1000);
  }

  EngineOptions options;
  options.datalog = true;
  Engine unbound_engine(options);
  Engine bound_engine(options);
  for (Engine* engine : {&unbound_engine, &bound_engine}) {
    ASSERT_TRUE(GraphWorkload::StoreEdges(engine, "edge", edges).ok());
    ASSERT_TRUE(engine->Consult(kClosureRules).ok());
  }
  EXPECT_EQ(SolutionSet(&unbound_engine, "path(X, Y)").size(), 2u * 66u);
  EXPECT_EQ(SolutionSet(&bound_engine, "path(0, Y)").size(), 11u);

  const DatalogStats unbound = unbound_engine.Stats().datalog;
  const DatalogStats bound = bound_engine.Stats().datalog;
  EXPECT_EQ(bound.magic_rewrites, 1u);
  EXPECT_EQ(unbound.magic_rewrites, 0u);
  EXPECT_LT(bound.tuples_derived, unbound.tuples_derived);
}

TEST(DatalogEngineTest, MaterializedSolutionsApi) {
  EngineOptions options;
  options.datalog = true;
  Engine engine(options);
  ASSERT_TRUE(
      GraphWorkload::StoreEdges(&engine, "edge", GraphWorkload::Chain(3))
          .ok());
  ASSERT_TRUE(engine.Consult(kClosureRules).ok());

  auto solutions = engine.Query("path(0, Y)");
  ASSERT_TRUE(solutions.ok()) << solutions.status();
  EXPECT_GE(engine.Stats().datalog.queries_bottom_up, 1u);
  // Before the first Next there is no current row.
  EXPECT_EQ((*solutions)->Binding("Y"), "");
  EXPECT_TRUE((*solutions)->All().empty());

  std::vector<std::string> ys;
  while (true) {
    auto more = (*solutions)->Next();
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_EQ((*solutions)->BindingAst("missing"), nullptr);
    EXPECT_EQ((*solutions)->Binding("missing"), "");
    ys.push_back((*solutions)->Binding("Y"));
  }
  EXPECT_EQ(ys, (std::vector<std::string>{"1", "2"}));  // sorted set
  // Exhausted: further Next stays false, and the engine accepts the next
  // query (the active-query flag was released).
  auto again = (*solutions)->Next();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  auto succeeds = engine.Succeeds("path(0, 2)");
  ASSERT_TRUE(succeeds.ok());
  EXPECT_TRUE(*succeeds);
}

TEST(DatalogEngineTest, AtomConstantsRoundTrip) {
  // Symbolic graphs exercise the atom <-> int64 encoding.
  EnginePair pair;
  pair.ConsultBoth(kClosureRules);
  for (Engine* engine : {&pair.wam, &pair.bottom_up}) {
    ASSERT_TRUE(engine
                    ->StoreFactsExternal(
                        "edge(a, b). edge(b, c). edge(c, d). edge(b, e).")
                    .ok());
  }
  pair.ExpectSameSolutions("path(X, Y)");
  pair.ExpectSameSolutions("path(a, Y)");
  pair.ExpectSameSolutions("path(X, e)");
  EXPECT_GE(pair.bottom_up.Stats().datalog.queries_bottom_up, 3u);
}

TEST(DatalogEngineTest, DescribeAndMetricsExport) {
  EngineOptions options;
  options.datalog = true;
  Engine engine(options);
  ASSERT_TRUE(
      GraphWorkload::StoreEdges(&engine, "edge", GraphWorkload::Chain(4))
          .ok());
  ASSERT_TRUE(engine.Consult(kClosureRules).ok());
  EXPECT_FALSE(SolutionSet(&engine, "path(X, Y)").empty());

  const std::string report = engine.datalog_manager()->Describe("path", 2);
  EXPECT_NE(report.find("path/2"), std::string::npos) << report;
  EXPECT_NE(report.find("recursive"), std::string::npos) << report;

  const std::string json = engine.ExportMetricsJson();
  EXPECT_NE(json.find("\"datalog\""), std::string::npos);
  EXPECT_NE(json.find("\"queries_bottom_up\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tuples_derived\""), std::string::npos);
}

TEST(DatalogEngineTest, ParallelBottomUpQueriesAgree) {
  // SolveParallel fans goals over worker sessions; with datalog on, each
  // session runs its own Evaluator (private scratch storage) against the
  // shared clause store — the path TSan sweeps via this test.
  EngineOptions options;
  options.datalog = true;
  Engine engine(options);
  ASSERT_TRUE(
      GraphWorkload::StoreEdges(&engine, "edge", GraphWorkload::Chain(40))
          .ok());
  ASSERT_TRUE(engine.Consult(kClosureRules).ok());
  std::vector<std::string> goals;
  for (int i = 0; i < 16; ++i) {
    goals.push_back("path(" + std::to_string(i) + ", Y)");
  }
  auto outcomes = engine.SolveParallel(goals, 4, /*collect_bindings=*/false);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status();
  ASSERT_EQ(outcomes->size(), goals.size());
  for (int i = 0; i < 16; ++i) {
    // Chain of 40 nodes: node i reaches nodes i+1..39.
    EXPECT_EQ((*outcomes)[i].count, static_cast<uint64_t>(39 - i)) << i;
  }
  EXPECT_GE(engine.Stats().datalog.queries_bottom_up, 16u);
}

TEST(DatalogEngineTest, SessionsUseBottomUpPath) {
  EngineOptions options;
  options.datalog = true;
  Engine engine(options);
  ASSERT_TRUE(
      GraphWorkload::StoreEdges(&engine, "edge", GraphWorkload::Chain(5))
          .ok());
  ASSERT_TRUE(engine.Consult(kClosureRules).ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();
  auto solutions = (*session)->Query("path(0, Y)");
  ASSERT_TRUE(solutions.ok()) << solutions.status();
  std::set<std::string> ys;
  while (true) {
    auto more = (*solutions)->Next();
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ys.insert((*solutions)->Binding("Y"));
  }
  EXPECT_EQ(ys, (std::set<std::string>{"1", "2", "3", "4"}));
  EXPECT_GE(engine.Stats().datalog.queries_bottom_up, 1u);
}

}  // namespace
}  // namespace educe
