// educe-asm round-trip: DisassembleLinked must be a canonical text form —
// parsing it reconstructs the LinkedCode field-for-field and reprinting
// reproduces the text byte-for-byte (fixpoint). Exercised over every
// procedure the compiler+linker emit for a varied corpus (fusion on and
// off), over warm-segment-reloaded code, and against a battery of
// malformed inputs the parser must reject.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "edb/code_cache.h"
#include "educe/engine.h"
#include "reader/parser.h"
#include "wam/asm.h"
#include "wam/builtins.h"
#include "wam/machine.h"
#include "wam/program.h"

namespace educe::wam {
namespace {

// A corpus touching every operand layout: constants, integers, floats,
// structures, lists, Y registers, cut, builtins, recursion (call/execute),
// multi-clause indexing (switch tables), and digrams the fusion pass
// rewrites (adjacent get_constant/get_integer, get_list+unify_variable_x,
// put_value+call).
constexpr const char* kCorpus = R"(
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
fact(0, 1).
fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
pi(3.14159).
twice(X, Y) :- pi(P), Y is X * P * 2.
color(red). color(green). color(blue).
mix(red, green, yellow).
mix(red, blue, purple).
mixnum(1, 2, 3).
mixnum(4, 5, 9).
point(p(X, Y), X, Y).
last([X], X).
last([_|T], X) :- last(T, X).
ifzero(0, yes) :- !.
ifzero(_, no).
)";

void ExpectSameLinked(const LinkedCode& a, const LinkedCode& b) {
  EXPECT_EQ(a.functor, b.functor);
  EXPECT_EQ(a.arity, b.arity);
  EXPECT_EQ(a.clause_offsets, b.clause_offsets);
  ASSERT_EQ(a.code.size(), b.code.size());
  for (size_t i = 0; i < a.code.size(); ++i) {
    EXPECT_EQ(a.code[i].op, b.code[i].op) << "instruction " << i;
    EXPECT_EQ(a.code[i].a, b.code[i].a) << "instruction " << i;
    EXPECT_EQ(a.code[i].b, b.code[i].b) << "instruction " << i;
    EXPECT_EQ(a.code[i].c, b.code[i].c) << "instruction " << i;
    EXPECT_EQ(a.code[i].imm, b.code[i].imm) << "instruction " << i;
  }
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t t = 0; t < a.tables.size(); ++t) {
    EXPECT_EQ(a.tables[t].on_var, b.tables[t].on_var);
    EXPECT_EQ(a.tables[t].on_atom, b.tables[t].on_atom);
    EXPECT_EQ(a.tables[t].on_number, b.tables[t].on_number);
    EXPECT_EQ(a.tables[t].on_list, b.tables[t].on_list);
    EXPECT_EQ(a.tables[t].on_struct, b.tables[t].on_struct);
    EXPECT_EQ(a.tables[t].default_target, b.tables[t].default_target);
    EXPECT_EQ(a.tables[t].entries, b.tables[t].entries);
  }
}

/// Round-trips every procedure in `program` (standard library included)
/// and returns how many were checked.
size_t RoundTripAll(dict::Dictionary* dict, Program* program) {
  std::vector<dict::SymbolId> functors;
  program->ForEachProc([&](const Program::Proc& proc) {
    functors.push_back(proc.functor);
  });
  size_t checked = 0;
  for (dict::SymbolId functor : functors) {
    auto linked = program->Linked(functor);
    EXPECT_TRUE(linked.ok()) << linked.status();
    if (!linked.ok()) continue;
    const std::string text =
        DisassembleLinked(*dict, **linked, program->builtins());
    auto parsed = ParseAsm(dict, text, program->builtins());
    EXPECT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    if (!parsed.ok()) continue;
    ExpectSameLinked(**linked, **parsed);
    const std::string reprinted =
        DisassembleLinked(*dict, **parsed, program->builtins());
    EXPECT_EQ(text, reprinted) << "not a fixpoint";
    ++checked;
  }
  return checked;
}

size_t RoundTripAll(dict::Dictionary* dict, Program* program, bool fuse) {
  program->SetFusionEnabled(fuse);
  return RoundTripAll(dict, program);
}

TEST(AsmTest, RoundTripsCompiledCorpusFused) {
  dict::Dictionary dict;
  Program program(&dict);
  ASSERT_TRUE(InstallStandardLibrary(&program).ok());
  auto clauses = reader::ParseProgram(&dict, kCorpus);
  ASSERT_TRUE(clauses.ok()) << clauses.status();
  for (const auto& clause : *clauses) {
    ASSERT_TRUE(program.AddClause(clause.term).ok());
  }
  // Fused streams must round-trip (fused_* mnemonics)...
  EXPECT_GT(RoundTripAll(&dict, &program, /*fuse=*/true), 20u);
  // ...and so must plain streams.
  EXPECT_GT(RoundTripAll(&dict, &program, /*fuse=*/false), 20u);
  // ...and unindexed linking (no switch tables, different control).
  program.SetIndexingEnabled(false);
  EXPECT_GT(RoundTripAll(&dict, &program, /*fuse=*/true), 20u);
}

TEST(AsmTest, FusedMnemonicsAppearInCorpusDisassembly) {
  dict::Dictionary dict;
  Program program(&dict);
  ASSERT_TRUE(InstallStandardLibrary(&program).ok());
  auto clauses = reader::ParseProgram(&dict, kCorpus);
  ASSERT_TRUE(clauses.ok());
  for (const auto& clause : *clauses) {
    ASSERT_TRUE(program.AddClause(clause.term).ok());
  }
  std::string all;
  std::vector<dict::SymbolId> functors;
  program.ForEachProc(
      [&](const Program::Proc& proc) { functors.push_back(proc.functor); });
  for (dict::SymbolId functor : functors) {
    auto linked = program.Linked(functor);
    ASSERT_TRUE(linked.ok());
    all += DisassembleLinked(dict, **linked, program.builtins());
  }
  // The corpus was chosen to trigger the fusion pass; if none of these
  // appear the pass is dead and the perf claim with it.
  EXPECT_NE(all.find("fused_"), std::string::npos);
  EXPECT_NE(all.find("fused_get_list_unify_variable_x"), std::string::npos);
}

TEST(AsmTest, RoundTripsWarmSegmentCode) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "educe_asm_warm.edb").string();
  std::remove(path.c_str());
  uint64_t checked = 0;
  {
    EngineOptions options;
    options.db_path = path;
    Engine engine(options);
    ASSERT_TRUE(engine.StoreFactsExternal("edge(a, b). edge(b, c). "
                                          "edge(c, d). edge(a, d).")
                    .ok());
    ASSERT_TRUE(engine
                    .StoreRulesExternal(
                        "reach(X, Y) :- edge(X, Y).\n"
                        "reach(X, Z) :- edge(X, Y), reach(Y, Z).")
                    .ok());
    auto count = engine.CountSolutions("reach(a, X)");
    ASSERT_TRUE(count.ok());
    ASSERT_TRUE(engine.Close().ok());
  }
  {
    EngineOptions options;
    options.db_path = path;
    Engine engine(options);
    ASSERT_TRUE(engine.attached());
    ASSERT_GT(engine.Stats().code_cache.warm_seeded, 0u);
    // Warm-segment-reloaded entries are post-fusion linked code; they
    // must round-trip like freshly linked code. Builtin ids print as
    // raw #id/arity here — still exact.
    engine.loader()->cache()->ForEachEntry(
        [&](const edb::CodeCache::EntryView& entry) {
          const std::string text =
              DisassembleLinked(*engine.dictionary(), entry.code);
          auto parsed = ParseAsm(engine.dictionary(), text);
          ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
          ExpectSameLinked(entry.code, **parsed);
          EXPECT_EQ(text,
                    DisassembleLinked(*engine.dictionary(), **parsed));
          ++checked;
        });
  }
  EXPECT_GT(checked, 0u);
  std::remove(path.c_str());
}

TEST(AsmTest, ParsedCodeExecutes) {
  // asm-round-tripped code must not just compare equal — it must run.
  // Serve the parsed LinkedCode through an ExternalResolver to a machine
  // whose program has no app/3 of its own.
  dict::Dictionary dict;
  Program compiled(&dict);
  ASSERT_TRUE(InstallStandardLibrary(&compiled).ok());
  auto clauses = reader::ParseProgram(
      &dict, "app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).\n");
  ASSERT_TRUE(clauses.ok());
  for (const auto& clause : *clauses) {
    ASSERT_TRUE(compiled.AddClause(clause.term).ok());
  }
  auto functor = dict.Intern("app", 3);
  ASSERT_TRUE(functor.ok());
  auto linked = compiled.Linked(*functor);
  ASSERT_TRUE(linked.ok());
  const std::string text =
      DisassembleLinked(dict, **linked, compiled.builtins());
  auto parsed = ParseAsm(&dict, text, compiled.builtins());
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  class AsmResolver : public ExternalResolver {
   public:
    AsmResolver(dict::SymbolId functor, std::shared_ptr<LinkedCode> code)
        : functor_(functor), code_(std::move(code)) {}
    base::Result<Resolution> Resolve(dict::SymbolId functor, uint32_t,
                                     Machine*) override {
      Resolution r;
      if (functor == functor_) {
        r.kind = Resolution::Kind::kCode;
        r.code = code_;
      }
      return r;
    }

   private:
    dict::SymbolId functor_;
    std::shared_ptr<LinkedCode> code_;
  };

  Program empty(&dict);
  ASSERT_TRUE(InstallStandardLibrary(&empty).ok());
  AsmResolver resolver(*functor, *parsed);
  Machine machine(&empty, {});
  machine.set_resolver(&resolver);
  auto read = reader::ParseTerm(&dict, "app(X, Y, [1,2])");
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(machine.StartQuery(read->term, read->num_vars).ok());
  int solutions = 0;
  while (true) {
    auto more = machine.NextSolution();
    ASSERT_TRUE(more.ok()) << more.status();
    if (!*more) break;
    ++solutions;
  }
  EXPECT_EQ(solutions, 3);  // []/[1,2], [1]/[2], [1,2]/[]
}

TEST(AsmTest, ParserRejectsMalformedInput) {
  dict::Dictionary dict;
  const char* cases[] = {
      // Unknown mnemonic.
      ".procedure 'p'/0\n0: frobnicate\n",
      // Missing .procedure header.
      "0: proceed\n",
      // Non-sequential numbering.
      ".procedure 'p'/0\n0: proceed\n2: proceed\n",
      // Jump out of bounds.
      ".procedure 'p'/0\n0: jump @7\n",
      // Table reference without a table.
      ".procedure 'p'/1\n0: switch_on_term T0\n",
      // Table target out of bounds.
      ".procedure 'p'/1\n.table T0 var=@9 atom=@fail num=@fail lis=@fail "
      "str=@fail default=@fail\n0: switch_on_term T0\n1: proceed\n",
      // Clause offsets not ascending.
      ".procedure 'p'/0\n.clause 1\n.clause 1\n0: proceed\n1: proceed\n",
      // Clause offset out of bounds.
      ".procedure 'p'/0\n.clause 5\n0: proceed\n",
      // Fused opcode with the wrong second component.
      ".procedure 'p'/2\n0: fused_get_constant_get_constant 'a'/0, A0\n"
      "1: proceed\n",
      // Fused opcode with no second slot at all.
      ".procedure 'p'/1\n0: fused_get_constant_proceed 'a'/0, A0\n",
      // Operand arity mismatch.
      ".procedure 'p'/0\n0: allocate\n",
      // Duplicate table key.
      ".procedure 'p'/1\n.table T0 var=@fail atom=@fail num=@fail lis=@fail "
      "str=@fail default=@fail 0x01=@0 0x01=@0\n0: proceed\n",
      // Table ids out of order.
      ".procedure 'p'/1\n.table T1 var=@fail atom=@fail num=@fail lis=@fail "
      "str=@fail default=@fail\n0: proceed\n",
  };
  for (const char* text : cases) {
    auto parsed = ParseAsm(&dict, text);
    EXPECT_FALSE(parsed.ok()) << "accepted malformed input:\n" << text;
  }
}

TEST(AsmTest, ParserAcceptsCommentsAndBlankLines) {
  dict::Dictionary dict;
  const char* text =
      "; leading comment\n"
      ".procedure 'p'/1  ; trailing\n"
      "\n"
      "0: get_constant 'it''s'/0, A0 ; quoted semicolon stays\n"
      "1: proceed\n";
  // Note: the quote inside the atom uses backslash escaping in canonical
  // form; here it is split across the comment test only.
  (void)text;
  const char* simple =
      "; comment\n"
      ".procedure 'p'/1\n"
      "\n"
      "0: get_constant 'a;b'/0, A0  ; ; ; semicolons inside quotes survive\n"
      "1: proceed\n";
  auto parsed = ParseAsm(&dict, simple);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->code.size(), 2u);
  const std::string reprinted = DisassembleLinked(dict, **parsed);
  auto again = ParseAsm(&dict, reprinted);
  ASSERT_TRUE(again.ok()) << again.status();
  ExpectSameLinked(**parsed, **again);
}

}  // namespace
}  // namespace educe::wam
