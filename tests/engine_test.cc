#include "educe/engine.h"

#include <gtest/gtest.h>

#include "base/stopwatch.h"

#include <set>
#include <string>
#include <vector>

namespace educe {
namespace {

std::vector<std::string> Bindings(Engine* engine, std::string_view goal,
                                  std::string_view var, int max = 1000) {
  auto solutions = engine->Query(goal);
  EXPECT_TRUE(solutions.ok()) << solutions.status();
  std::vector<std::string> out;
  if (!solutions.ok()) return out;
  while (static_cast<int>(out.size()) < max) {
    auto more = (*solutions)->Next();
    EXPECT_TRUE(more.ok()) << more.status();
    if (!more.ok() || !*more) break;
    out.push_back((*solutions)->Binding(var));
  }
  return out;
}

TEST(EngineTest, InMemoryQueries) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1). p(2). q(X) :- p(X), X > 1.").ok());
  EXPECT_EQ(Bindings(&engine, "q(X)", "X"), (std::vector<std::string>{"2"}));
  auto succeeds = engine.Succeeds("p(1)");
  ASSERT_TRUE(succeeds.ok());
  EXPECT_TRUE(*succeeds);
}

TEST(EngineTest, ExternalFactsBehaveLikeInternalOnes) {
  Engine engine;
  ASSERT_TRUE(engine.DeclareRelation("edge", 2).ok());
  ASSERT_TRUE(engine
                  .StoreFactsExternal(
                      "edge(a, b). edge(b, c). edge(c, d). edge(b, e).")
                  .ok());
  ASSERT_TRUE(engine.Consult(R"(
    reach(X, Y) :- edge(X, Y).
    reach(X, Y) :- edge(X, Z), reach(Z, Y).
  )").ok());
  EXPECT_EQ(Bindings(&engine, "edge(b, X)", "X"),
            (std::vector<std::string>{"c", "e"}));
  const std::vector<std::string> reached = Bindings(&engine, "reach(a, X)", "X");
  EXPECT_EQ(std::set<std::string>(reached.begin(), reached.end()),
            (std::set<std::string>{"b", "c", "d", "e"}));
  auto none = engine.Succeeds("edge(d, X)");
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(*none);
}

TEST(EngineTest, ExternalFactsWithStructuredValues) {
  Engine engine;
  ASSERT_TRUE(engine
                  .StoreFactsExternal(
                      "item(1, box(3, 4), [a, b]). item(2, box(5, 6), []).")
                  .ok());
  EXPECT_EQ(Bindings(&engine, "item(1, B, L)", "B"),
            (std::vector<std::string>{"box(3,4)"}));
  EXPECT_EQ(Bindings(&engine, "item(N, box(5, _), _)", "N"),
            (std::vector<std::string>{"2"}));
}

TEST(EngineTest, CompiledExternalRules) {
  EngineOptions options;
  options.rule_storage = RuleStorage::kCompiled;
  Engine engine(options);
  ASSERT_TRUE(engine.StoreFactsExternal("leg(a, b). leg(b, c).").ok());
  ASSERT_TRUE(engine.StoreRulesExternal(R"(
    trip(X, Y) :- leg(X, Y).
    trip(X, Y) :- leg(X, Z), trip(Z, Y).
  )").ok());
  EXPECT_EQ(Bindings(&engine, "trip(a, X)", "X"),
            (std::vector<std::string>{"b", "c"}));
  // The rules were loaded from the EDB, not from main memory.
  EXPECT_GT(engine.Stats().resolver.rule_loads, 0u);
  EXPECT_GT(engine.Stats().loader.clauses_decoded, 0u);
}

TEST(EngineTest, SourceExternalRulesGiveSameAnswers) {
  EngineOptions options;
  options.rule_storage = RuleStorage::kSource;
  Engine engine(options);
  ASSERT_TRUE(engine.StoreFactsExternal("leg(a, b). leg(b, c).").ok());
  ASSERT_TRUE(engine.StoreRulesExternal(R"(
    trip(X, Y) :- leg(X, Y).
    trip(X, Y) :- leg(X, Z), trip(Z, Y).
  )").ok());
  EXPECT_EQ(Bindings(&engine, "trip(a, X)", "X"),
            (std::vector<std::string>{"b", "c"}));
  // The baseline pathology: parses and asserts happened per use.
  const EngineStats stats = engine.Stats();
  EXPECT_GT(stats.resolver.source_parses, 0u);
  EXPECT_GT(stats.resolver.source_asserts, 0u);
  EXPECT_GT(stats.resolver.source_erases, 0u);
  EXPECT_GE(stats.resolver.source_asserts, stats.resolver.source_erases);
}

TEST(EngineTest, SourceModeReparsesPerUse) {
  EngineOptions options;
  options.rule_storage = RuleStorage::kSource;
  Engine engine(options);
  ASSERT_TRUE(engine.StoreRulesExternal("r(1). r(2). r(3).").ok());

  auto c1 = engine.CountSolutions("r(X)");
  ASSERT_TRUE(c1.ok());
  const uint64_t parses_after_one = engine.Stats().resolver.source_parses;
  auto c2 = engine.CountSolutions("r(X)");
  ASSERT_TRUE(c2.ok());
  const uint64_t parses_after_two = engine.Stats().resolver.source_parses;
  EXPECT_EQ(*c1, 3u);
  EXPECT_EQ(parses_after_two, 2 * parses_after_one)
      << "every use must re-parse all clauses";
}

TEST(EngineTest, CompiledModeCachesAcrossUses) {
  EngineOptions options;
  options.rule_storage = RuleStorage::kCompiled;
  Engine engine(options);
  ASSERT_TRUE(engine.StoreRulesExternal("r(1). r(2). r(3).").ok());

  ASSERT_TRUE(engine.CountSolutions("r(X)").ok());
  const uint64_t decoded_one = engine.Stats().loader.clauses_decoded;
  ASSERT_TRUE(engine.CountSolutions("r(X)").ok());
  const uint64_t decoded_two = engine.Stats().loader.clauses_decoded;
  EXPECT_EQ(decoded_one, decoded_two) << "second use must hit the code cache";
  EXPECT_GT(engine.Stats().loader.cache_hits, 0u);
}

TEST(EngineTest, ThreeStorageModesAgree) {
  const char* facts = R"(
    parent(tom, bob). parent(tom, liz). parent(bob, ann).
    parent(bob, pat). parent(pat, jim).
  )";
  const char* rules = R"(
    anc(X, Y) :- parent(X, Y).
    anc(X, Y) :- parent(X, Z), anc(Z, Y).
  )";

  auto run = [&](RuleStorage mode, bool rules_external) {
    EngineOptions options;
    options.rule_storage = mode;
    Engine engine(options);
    EXPECT_TRUE(engine.StoreFactsExternal(facts).ok());
    if (rules_external) {
      EXPECT_TRUE(engine.StoreRulesExternal(rules).ok());
    } else {
      EXPECT_TRUE(engine.Consult(rules).ok());
    }
    return Bindings(&engine, "anc(tom, X)", "X");
  };

  const auto in_memory = run(RuleStorage::kCompiled, false);
  const auto compiled = run(RuleStorage::kCompiled, true);
  const auto source = run(RuleStorage::kSource, true);
  EXPECT_EQ(in_memory.size(), 5u);
  EXPECT_EQ(compiled, in_memory);
  EXPECT_EQ(source, in_memory);
}

TEST(EngineTest, ChoicePointEliminationOnBoundKeys) {
  EngineOptions options;
  Engine engine(options);
  std::string facts;
  for (int i = 0; i < 100; ++i) {
    facts += "kv(k" + std::to_string(i) + ", " + std::to_string(i) + ").\n";
  }
  ASSERT_TRUE(engine.StoreFactsExternal(facts).ok());

  // Bound key: deterministic retrieval, no choice point.
  engine.ResetStats();
  EXPECT_EQ(Bindings(&engine, "kv(k42, V)", "V"),
            (std::vector<std::string>{"42"}));
  EXPECT_EQ(engine.Stats().machine.choice_points, 0u);
  EXPECT_GT(engine.Stats().resolver.fact_calls_deterministic, 0u);

  // Ablation B: with elimination off, the same call pays a choice point.
  engine.options().choice_point_elimination = false;
  engine.SyncOptions();
  engine.ResetStats();
  EXPECT_EQ(Bindings(&engine, "kv(k42, V)", "V"),
            (std::vector<std::string>{"42"}));
  EXPECT_GT(engine.Stats().machine.choice_points, 0u);
}

TEST(EngineTest, FactScanNarrowsIo) {
  Engine engine;
  std::string facts;
  for (int i = 0; i < 2000; ++i) {
    facts += "big(" + std::to_string(i) + ", v" + std::to_string(i % 7) +
             ").\n";
  }
  ASSERT_TRUE(engine.StoreFactsExternal(facts).ok());

  engine.ResetStats();
  ASSERT_TRUE(engine.CountSolutions("big(1234, V)").ok());
  const uint64_t bound_rows = engine.Stats().clause_store.fact_rows_fetched;

  engine.ResetStats();
  auto all = engine.CountSolutions("big(N, V)");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, 2000u);
  const uint64_t open_rows = engine.Stats().clause_store.fact_rows_fetched;
  EXPECT_EQ(bound_rows, 1u);
  EXPECT_EQ(open_rows, 2000u);
}

TEST(EngineTest, ColdVsWarmBufferReads) {
  EngineOptions options;
  options.buffer_frames = 64;
  Engine engine(options);
  std::string facts;
  for (int i = 0; i < 3000; ++i) {
    facts += "t(" + std::to_string(i) + ").\n";
  }
  ASSERT_TRUE(engine.StoreFactsExternal(facts).ok());

  ASSERT_TRUE(engine.InvalidateBuffers().ok());
  engine.ResetStats();
  ASSERT_TRUE(engine.CountSolutions("t(X)").ok());
  const uint64_t cold_reads = engine.Stats().paged_file.pages_read;

  engine.ResetStats();
  ASSERT_TRUE(engine.CountSolutions("t(X)").ok());
  const uint64_t warm_reads = engine.Stats().paged_file.pages_read;
  EXPECT_GT(cold_reads, 0u);
  EXPECT_LT(warm_reads, cold_reads)
      << "second run must benefit from the buffer pool";
}

TEST(EngineTest, ExternalRulesWithControlConstructs) {
  Engine engine;
  ASSERT_TRUE(engine.StoreFactsExternal("score(ann, 7). score(bob, 3).").ok());
  ASSERT_TRUE(engine.StoreRulesExternal(R"(
    grade(P, pass) :- score(P, S), ( S >= 5 -> true ; fail ).
    grade(P, fail_grade) :- score(P, S), S < 5.
  )").ok());
  EXPECT_EQ(Bindings(&engine, "grade(ann, G)", "G"),
            (std::vector<std::string>{"pass"}));
  EXPECT_EQ(Bindings(&engine, "grade(bob, G)", "G"),
            (std::vector<std::string>{"fail_grade"}));
}

TEST(EngineTest, MixedInternalExternalRecursion) {
  // Internal rules over external facts and external rules over internal
  // helpers, in one derivation.
  Engine engine;
  ASSERT_TRUE(engine.StoreFactsExternal("hop(1, 2). hop(2, 3). hop(3, 4).").ok());
  ASSERT_TRUE(engine.Consult("double_hop(X, Y) :- hop(X, Z), hop(Z, Y).").ok());
  ASSERT_TRUE(engine.StoreRulesExternal(
      "far(X, Y) :- double_hop(X, M), hop(M, Y).").ok());
  EXPECT_EQ(Bindings(&engine, "far(1, Y)", "Y"),
            (std::vector<std::string>{"4"}));
}

TEST(EngineTest, FindallOverExternalFacts) {
  Engine engine;
  ASSERT_TRUE(engine.StoreFactsExternal("c(1). c(2). c(3).").ok());
  EXPECT_EQ(Bindings(&engine, "findall(X, c(X), L)", "L"),
            (std::vector<std::string>{"[1,2,3]"}));
}

TEST(EngineTest, NegationOverExternalFacts) {
  Engine engine;
  ASSERT_TRUE(engine.StoreFactsExternal("seen(a). seen(b).").ok());
  auto yes = engine.Succeeds("\\+ seen(z)");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = engine.Succeeds("\\+ seen(a)");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST(EngineTest, UpdatesInvalidateLoaderCache) {
  Engine engine;
  ASSERT_TRUE(engine.StoreRulesExternal("val(1).").ok());
  EXPECT_EQ(Bindings(&engine, "val(X)", "X"), (std::vector<std::string>{"1"}));
  ASSERT_TRUE(engine.StoreRulesExternal("val(2).").ok());
  EXPECT_EQ(Bindings(&engine, "val(X)", "X"),
            (std::vector<std::string>{"1", "2"}));
}

TEST(EngineTest, SimulatedIoLatencyIsCharged) {
  EngineOptions fast;
  fast.buffer_frames = 8;
  EngineOptions slow = fast;
  slow.io_latency_ns = 200000;  // 0.2 ms per page

  auto run = [](EngineOptions options) {
    Engine engine(options);
    std::string facts;
    for (int i = 0; i < 800; ++i) facts += "d(" + std::to_string(i) + ").\n";
    EXPECT_TRUE(engine.StoreFactsExternal(facts).ok());
    EXPECT_TRUE(engine.InvalidateBuffers().ok());
    base::Stopwatch watch;
    EXPECT_TRUE(engine.CountSolutions("d(X)").ok());
    return watch.ElapsedSeconds();
  };
  const double fast_time = run(fast);
  const double slow_time = run(slow);
  EXPECT_GT(slow_time, fast_time);
}

TEST(EngineTest, QueryErrorsSurface) {
  Engine engine;
  auto result = engine.Query("undefined_pred(1)");
  ASSERT_TRUE(result.ok());
  auto next = (*result)->Next();
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), base::StatusCode::kNotFound);
}

TEST(EngineTest, SyntaxErrorsSurface) {
  Engine engine;
  EXPECT_FALSE(engine.Consult("p(").ok());
  EXPECT_FALSE(engine.Query("p((").ok());
}


TEST(EngineTest, EdbAssertRetractScan) {
  Engine engine;
  // edb_assert declares the relation on first use and stores facts.
  EXPECT_TRUE(*engine.Succeeds("edb_assert(stock(widget, 5))"));
  EXPECT_TRUE(*engine.Succeeds("edb_assert(stock(gadget, 3))"));
  EXPECT_TRUE(*engine.Succeeds("edb_assert(stock(gizmo, 9))"));
  auto n = engine.CountSolutions("stock(P, Q)");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);

  // Non-ground asserts are rejected.
  auto bad = engine.Query("edb_assert(stock(open, Q))");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE((*bad)->Next().ok());

  // edb_retract removes the first match and keeps bindings.
  auto first = engine.First("edb_retract(stock(gadget, Q))");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)["Q"], "3");
  n = engine.CountSolutions("stock(P, Q)");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  auto gone = engine.Succeeds("edb_retract(stock(gadget, _))");
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(*gone);

  // edb_scan ships the remaining relation set-at-a-time.
  auto scan = engine.First("edb_scan(stock/2, L), length(L, N)");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)["N"], "2");
}

TEST(EngineTest, EdbUpdatesVisibleToLaterQueries) {
  Engine engine;
  ASSERT_TRUE(engine.Consult(
      "restock(P) :- edb_retract(inv(P, Q)), Q2 is Q + 10, "
      "edb_assert(inv(P, Q2)).").ok());
  EXPECT_TRUE(*engine.Succeeds("edb_assert(inv(bolt, 1))"));
  EXPECT_TRUE(*engine.Succeeds("restock(bolt)"));
  auto q = engine.First("inv(bolt, Q)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)["Q"], "11");
}


TEST(EngineTest, DictionaryGarbageCollection) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("keep(me). keep(too).").ok());
  const size_t baseline = engine.dictionary()->size();

  // Interning transient symbols through queries grows the dictionary.
  for (int i = 0; i < 50; ++i) {
    auto ok = engine.Succeeds("X = transient_atom_" + std::to_string(i));
    ASSERT_TRUE(ok.ok());
  }
  EXPECT_GT(engine.dictionary()->size(), baseline + 40);

  auto removed = engine.CollectDictionary();
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_GE(*removed, 50u);

  // Everything still works after the sweep: compiled code was protected.
  auto n = engine.CountSolutions("keep(X)");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 2u);
  auto again = engine.Succeeds("append([1], [2], [1, 2])");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*again);
}

TEST(EngineTest, StoredRelativeCodeSurvivesDictionaryGc) {
  // The paper's core resilience claim (§3.1): stored code uses
  // associative addresses, so internal-dictionary GC cannot break it.
  Engine engine;
  ASSERT_TRUE(engine.StoreRulesExternal("stored(X) :- X = marker_atom.").ok());
  auto first = engine.First("stored(V)");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)["V"], "marker_atom");

  auto removed = engine.CollectDictionary();
  ASSERT_TRUE(removed.ok()) << removed.status();

  // Invalidate the loader cache by updating the stored procedure, forcing
  // a fresh decode through the external dictionary after the sweep.
  ASSERT_TRUE(engine.StoreRulesExternal("stored(second).").ok());
  auto values = engine.CountSolutions("stored(V)");
  ASSERT_TRUE(values.ok()) << values.status();
  EXPECT_EQ(*values, 2u);
  auto marker = engine.First("stored(V), V = marker_atom");
  ASSERT_TRUE(marker.ok()) << marker.status();
}

TEST(EngineTest, ExternalFactsSurviveDictionaryGc) {
  Engine engine;
  ASSERT_TRUE(engine.StoreFactsExternal("kv(alpha, 1). kv(beta, 2).").ok());
  ASSERT_TRUE(engine.CollectDictionary().ok());
  // The relation's functor id may have been swept; calling re-interns it
  // and the catalog resolves by name/arity.
  auto v = engine.First("kv(beta, V)");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ((*v)["V"], "2");
}

// At most one Solutions may be active per machine: a second Query while
// one is live must be refused, not corrupt the machine under the live
// iterator (the query server's connection handler depends on this being
// an error).
TEST(EngineTest, SecondQueryWhileSolutionsActiveIsRefused) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1). p(2). p(3).").ok());

  auto first = engine.Query("p(X)");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(engine.query_active());
  ASSERT_TRUE(*(*first)->Next());
  EXPECT_EQ((*first)->Binding("X"), "1");

  auto second = engine.Query("p(Y)");
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsFailedPrecondition()) << second.status();

  // The refused call must not have disturbed the live iterator.
  ASSERT_TRUE(*(*first)->Next());
  EXPECT_EQ((*first)->Binding("X"), "2");

  // Destroying the Solutions (even mid-enumeration) frees the machine.
  first->reset();
  EXPECT_FALSE(engine.query_active());
  auto count = engine.CountSolutions("p(X)");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(*count, 3u);

  // A *finished* Solutions — Next returned false — releases the machine
  // while still alive: holding it for its bindings must not block the
  // next query.
  auto done = engine.Query("p(X)");
  ASSERT_TRUE(done.ok()) << done.status();
  while (*(*done)->Next()) {
  }
  EXPECT_FALSE(engine.query_active());
  auto after = engine.Query("p(Z)");
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_TRUE(*(*after)->Next());
  EXPECT_EQ((*after)->Binding("Z"), "1");
  // Destroying the stale finished Solutions now must not clobber the
  // live query's flag.
  done->reset();
  EXPECT_TRUE(engine.query_active());
}

TEST(EngineTest, SecondSessionQueryWhileSolutionsActiveIsRefused) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1). p(2).").ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();

  auto first = (*session)->Query("p(X)");
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(*(*first)->Next());

  auto second = (*session)->Query("p(Y)");
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsFailedPrecondition()) << second.status();

  first->reset();
  EXPECT_FALSE((*session)->query_active());
  auto count = (*session)->CountSolutions("p(X)");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(*count, 2u);
}

}  // namespace
}  // namespace educe
