// Tests for the extended builtin set and bootstrap library (sorting,
// all-solutions, list higher-order predicates, directives).

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "educe/engine.h"

namespace educe {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  std::vector<std::string> Solve(std::string_view goal, std::string_view var,
                                 int max = 100) {
    auto q = engine_.Query(goal);
    EXPECT_TRUE(q.ok()) << q.status();
    std::vector<std::string> out;
    if (!q.ok()) return out;
    while (static_cast<int>(out.size()) < max) {
      auto more = (*q)->Next();
      EXPECT_TRUE(more.ok()) << more.status() << " for " << goal;
      if (!more.ok() || !*more) break;
      out.push_back((*q)->Binding(var));
    }
    return out;
  }

  bool Succeeds(std::string_view goal) {
    auto ok = engine_.Succeeds(goal);
    EXPECT_TRUE(ok.ok()) << ok.status() << " for " << goal;
    return ok.ok() && *ok;
  }

  Engine engine_;
};

TEST_F(BuiltinsTest, SortDedupsAndOrders) {
  EXPECT_EQ(Solve("sort([c, 3, a, 1, b, a, 2.5, f(x), 1], S)", "S"),
            (std::vector<std::string>{"[1,2.5,3,a,b,c,f(x)]"}));
  EXPECT_EQ(Solve("msort([b, a, b], S)", "S"),
            (std::vector<std::string>{"[a,b,b]"}));
  EXPECT_EQ(Solve("sort([], S)", "S"), (std::vector<std::string>{"[]"}));
}

TEST_F(BuiltinsTest, SortUsesStandardOrder) {
  // Var < Number < Atom < Compound; floats before equal ints.
  EXPECT_EQ(Solve("msort([f(1), foo, 2, 1.5], S)", "S"),
            (std::vector<std::string>{"[1.5,2,foo,f(1)]"}));
}

TEST_F(BuiltinsTest, Keysort) {
  EXPECT_EQ(Solve("keysort([b-2, a-1, b-0, a-9], S)", "S"),
            (std::vector<std::string>{"[a - 1,a - 9,b - 2,b - 0]"}));
  auto q = engine_.Query("keysort([notapair], S)");
  ASSERT_TRUE(q.ok());
  auto more = (*q)->Next();
  EXPECT_FALSE(more.ok());
}

TEST_F(BuiltinsTest, Succ) {
  EXPECT_EQ(Solve("succ(3, X)", "X"), (std::vector<std::string>{"4"}));
  EXPECT_EQ(Solve("succ(X, 4)", "X"), (std::vector<std::string>{"3"}));
  EXPECT_FALSE(Succeeds("succ(X, 0)"));
}

TEST_F(BuiltinsTest, SetofBagof) {
  ASSERT_TRUE(engine_.Consult("p(2). p(1). p(2). p(3).").ok());
  EXPECT_EQ(Solve("setof(X, p(X), L)", "L"),
            (std::vector<std::string>{"[1,2,3]"}));
  EXPECT_EQ(Solve("bagof(X, p(X), L)", "L"),
            (std::vector<std::string>{"[2,1,2,3]"}));
  // bagof fails (rather than giving []) when there are no solutions.
  EXPECT_FALSE(Succeeds("bagof(X, fail, L)"));
  // Caret witnesses are stripped (simplified semantics).
  ASSERT_TRUE(engine_.Consult("q(1, a). q(2, b).").ok());
  EXPECT_EQ(Solve("setof(X, Y^q(X, Y), L)", "L"),
            (std::vector<std::string>{"[1,2]"}));
}

TEST_F(BuiltinsTest, AggregateAll) {
  ASSERT_TRUE(engine_.Consult("v(10). v(20). v(5).").ok());
  EXPECT_EQ(Solve("aggregate_all(count, v(_), N)", "N"),
            (std::vector<std::string>{"3"}));
  EXPECT_EQ(Solve("aggregate_all(sum(X), v(X), S)", "S"),
            (std::vector<std::string>{"35"}));
  EXPECT_EQ(Solve("aggregate_all(max(X), v(X), M)", "M"),
            (std::vector<std::string>{"20"}));
  EXPECT_EQ(Solve("aggregate_all(min(X), v(X), M)", "M"),
            (std::vector<std::string>{"5"}));
  EXPECT_EQ(Solve("aggregate_all(count, fail, N)", "N"),
            (std::vector<std::string>{"0"}));
}

TEST_F(BuiltinsTest, Numlist) {
  EXPECT_EQ(Solve("numlist(3, 7, L)", "L"),
            (std::vector<std::string>{"[3,4,5,6,7]"}));
  EXPECT_EQ(Solve("numlist(5, 4, L)", "L"),
            (std::vector<std::string>{"[]"}));
}

TEST_F(BuiltinsTest, HigherOrderListPredicates) {
  ASSERT_TRUE(engine_.Consult("even(X) :- 0 =:= X mod 2.").ok());
  EXPECT_EQ(Solve("include(even, [1,2,3,4,5,6], L)", "L"),
            (std::vector<std::string>{"[2,4,6]"}));
  EXPECT_EQ(Solve("exclude(even, [1,2,3,4,5,6], L)", "L"),
            (std::vector<std::string>{"[1,3,5]"}));
  ASSERT_TRUE(engine_.Consult("double(X, Y) :- Y is X * 2.").ok());
  EXPECT_EQ(Solve("maplist(double, [1,2,3], L)", "L"),
            (std::vector<std::string>{"[2,4,6]"}));
  EXPECT_TRUE(Succeeds("maplist(even, [2,4])"));
  EXPECT_FALSE(Succeeds("maplist(even, [2,3])"));
}

TEST_F(BuiltinsTest, Once) {
  ASSERT_TRUE(engine_.Consult("c(1). c(2).").ok());
  EXPECT_EQ(Solve("once(c(X))", "X"), (std::vector<std::string>{"1"}));
}

TEST_F(BuiltinsTest, DirectivesRunAtConsult) {
  ASSERT_TRUE(engine_.Consult(R"(
    :- dynamic(counter/1).
    :- assert(counter(0)).
    :- dynamic bump/0.
    bump :- retract(counter(N)), N1 is N + 1, assert(counter(N1)).
  )").ok());
  EXPECT_EQ(Solve("counter(N)", "N"), (std::vector<std::string>{"0"}));
  EXPECT_TRUE(Succeeds("bump, bump, bump"));
  EXPECT_EQ(Solve("counter(N)", "N"), (std::vector<std::string>{"3"}));
}

TEST_F(BuiltinsTest, FailingDirectiveReportsError) {
  auto st = engine_.Consult(":- fail.");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("directive failed"), std::string::npos);
}

TEST_F(BuiltinsTest, SortOverExternalFacts) {
  ASSERT_TRUE(engine_.StoreFactsExternal("m(9). m(4). m(7).").ok());
  EXPECT_EQ(Solve("findall(X, m(X), L0), msort(L0, L)", "L"),
            (std::vector<std::string>{"[4,7,9]"}));
}


TEST_F(BuiltinsTest, ListingPrintsClauses) {
  ASSERT_TRUE(engine_.Consult("lp(1). lp(X) :- X > 0.").ok());
  std::ostringstream out;
  engine_.machine()->set_output(&out);
  EXPECT_TRUE(Succeeds("listing(lp/1)"));
  EXPECT_NE(out.str().find("lp(1)."), std::string::npos);
  EXPECT_NE(out.str().find(":-"), std::string::npos);
  engine_.machine()->set_output(&std::cout);
}

TEST_F(BuiltinsTest, StatisticsExposesCounters) {
  ASSERT_TRUE(engine_.Consult("s(1). s(2).").ok());
  auto n = engine_.First("s(_), s(_), statistics(inferences, N)");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_GT(std::stoll((*n)["N"]), 0);
  auto heap = engine_.First("statistics(heap_cells, H)");
  ASSERT_TRUE(heap.ok());
  EXPECT_GT(std::stoll((*heap)["H"]), 0);
  auto bad = engine_.Query("statistics(nonsense, V)");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE((*bad)->Next().ok());
}

}  // namespace
}  // namespace educe
