#include <gtest/gtest.h>

#include <set>

#include "rel/exec.h"
#include "rel/row.h"
#include "rel/table.h"
#include "rel/wisconsin.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"

namespace educe::rel {
namespace {

class RelTest : public ::testing::Test {
 protected:
  RelTest() : pool_(&file_, 256), db_(&pool_) {}

  storage::PagedFile file_;
  storage::BufferPool pool_;
  Database db_;
};

Schema TwoColumnSchema() {
  return Schema({{"id", ColumnType::kInt}, {"name", ColumnType::kString}});
}

TEST_F(RelTest, TupleCodecRoundTrip) {
  Schema schema({{"a", ColumnType::kInt},
                 {"b", ColumnType::kFloat},
                 {"c", ColumnType::kString}});
  Tuple tuple = {int64_t{-42}, 2.5, std::string("hello world")};
  auto decoded = DecodeTuple(schema, EncodeTuple(schema, tuple));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, tuple);
}

TEST_F(RelTest, TupleCodecDetectsCorruption) {
  Schema schema({{"a", ColumnType::kInt}});
  EXPECT_FALSE(DecodeTuple(schema, "abc").ok());
  Tuple tuple = {int64_t{1}};
  std::string bytes = EncodeTuple(schema, tuple) + "x";
  EXPECT_FALSE(DecodeTuple(schema, bytes).ok());
}

TEST_F(RelTest, InsertAndScan) {
  auto table = db_.CreateTable("people", TwoColumnSchema());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert({int64_t{1}, std::string("ann")}).ok());
  ASSERT_TRUE((*table)->Insert({int64_t{2}, std::string("bob")}).ok());

  auto rows = MakeSeqScan(*table)->Collect();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(RelTest, InsertTypeChecked) {
  auto table = db_.CreateTable("t", TwoColumnSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE((*table)->Insert({int64_t{1}}).ok());  // arity
  EXPECT_FALSE(
      (*table)->Insert({std::string("x"), std::string("y")}).ok());  // type
}

TEST_F(RelTest, IndexLookup) {
  auto table = db_.CreateTable("t", TwoColumnSchema());
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE((*table)->Insert({i, "row" + std::to_string(i)}).ok());
  }
  ASSERT_TRUE((*table)->CreateIndex("id").ok());
  auto rows = (*table)->IndexLookup(0, int64_t{123});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(std::get<std::string>((*rows)[0][1]), "row123");

  auto missing = (*table)->IndexLookup(0, int64_t{9999});
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
}

TEST_F(RelTest, IndexMaintainedOnInsert) {
  auto table = db_.CreateTable("t", TwoColumnSchema());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->CreateIndex("id").ok());
  ASSERT_TRUE((*table)->Insert({int64_t{7}, std::string("late")}).ok());
  auto rows = (*table)->IndexLookup(0, int64_t{7});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(RelTest, FilterAndProject) {
  auto table = db_.CreateTable("t", TwoColumnSchema());
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE((*table)->Insert({i, "n" + std::to_string(i)}).ok());
  }
  auto source = MakeProject(
      MakeFilter(MakeSeqScan(*table),
                 [](const Tuple& t) { return std::get<int64_t>(t[0]) < 10; }),
      {1});
  auto rows = source->Collect();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  EXPECT_EQ((*rows)[0].size(), 1u);
}

TEST_F(RelTest, JoinsAgree) {
  auto left = db_.CreateTable("l", TwoColumnSchema());
  auto right = db_.CreateTable("r", TwoColumnSchema());
  ASSERT_TRUE(left.ok() && right.ok());
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE((*left)->Insert({i % 10, "L" + std::to_string(i)}).ok());
  }
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE((*right)->Insert({i % 5, "R" + std::to_string(i)}).ok());
  }

  auto nl = MakeNestedLoopJoin(MakeSeqScan(*left), MakeSeqScan(*right), 0, 0)
                ->Collect();
  auto hash = MakeHashJoin(MakeSeqScan(*left), MakeSeqScan(*right), 0, 0)
                  ->Collect();
  ASSERT_TRUE(nl.ok() && hash.ok());
  EXPECT_EQ(nl->size(), hash->size());
  // 50 left rows, keys 0..9; right keys 0..4 with 4 rows each. Left rows
  // with key<5: 25 of them, each matching 4 right rows = 100.
  EXPECT_EQ(nl->size(), 100u);
}

TEST_F(RelTest, WisconsinShape) {
  auto table = rel::WisconsinGenerator::Build(&db_, "tenk", 1000, 42);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->row_count(), 1000u);

  // unique1 is a permutation: all values distinct, in [0, n).
  auto rows = MakeSeqScan(*table)->Collect();
  ASSERT_TRUE(rows.ok());
  std::set<int64_t> unique1;
  for (const Tuple& t : *rows) {
    const int64_t u1 = std::get<int64_t>(t[0]);
    EXPECT_GE(u1, 0);
    EXPECT_LT(u1, 1000);
    unique1.insert(u1);
    EXPECT_EQ(std::get<int64_t>(t[2]), u1 % 2);       // two
    EXPECT_EQ(std::get<int64_t>(t[6]), u1 % 100);     // one_percent
    EXPECT_EQ(std::get<std::string>(t[13]).size(), 52u);
  }
  EXPECT_EQ(unique1.size(), 1000u);

  // Indexed point lookup on unique2.
  auto hit = (*table)->IndexLookup(1, int64_t{500});
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->size(), 1u);

  // 1% selection via one_percent column.
  auto sel = MakeFilter(MakeSeqScan(*table), [](const Tuple& t) {
               return std::get<int64_t>(t[6]) == 50;
             })->Collect();
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 10u);  // 1% of 1000
}

TEST_F(RelTest, WisconsinDeterministicAcrossSeedReuse) {
  auto a = rel::WisconsinGenerator::Build(&db_, "a", 200, 7);
  auto b = rel::WisconsinGenerator::Build(&db_, "b", 200, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  auto rows_a = MakeSeqScan(*a)->Collect();
  auto rows_b = MakeSeqScan(*b)->Collect();
  ASSERT_TRUE(rows_a.ok() && rows_b.ok());
  EXPECT_EQ(*rows_a, *rows_b);
}

TEST_F(RelTest, DuplicateTableRejected) {
  ASSERT_TRUE(db_.CreateTable("dup", TwoColumnSchema()).ok());
  EXPECT_FALSE(db_.CreateTable("dup", TwoColumnSchema()).ok());
  EXPECT_TRUE(db_.GetTable("dup").ok());
  EXPECT_FALSE(db_.GetTable("nope").ok());
}


TEST_F(RelTest, IndexNestedLoopJoinMatchesHashJoin) {
  auto left = db_.CreateTable("lt", TwoColumnSchema());
  auto right = db_.CreateTable("rt", TwoColumnSchema());
  ASSERT_TRUE(left.ok() && right.ok());
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE((*left)->Insert({i % 40, "L" + std::to_string(i)}).ok());
    ASSERT_TRUE((*right)->Insert({i, "R" + std::to_string(i)}).ok());
  }
  ASSERT_TRUE((*right)->CreateIndex("id").ok());

  auto inl = MakeIndexNestedLoopJoin(MakeSeqScan(*left), *right, 0, 0)
                 ->Collect();
  auto hash =
      MakeHashJoin(MakeSeqScan(*left), MakeSeqScan(*right), 0, 0)->Collect();
  ASSERT_TRUE(inl.ok() && hash.ok());
  EXPECT_EQ(inl->size(), 200u);
  // Hash join output is right-driven; compare as multisets.
  auto key = [](const Tuple& t) {
    return std::get<std::string>(t[1]) + "/" + std::get<std::string>(t[3]);
  };
  std::multiset<std::string> a, b;
  for (const auto& t : *inl) a.insert(key(t));
  for (const auto& t : *hash) {
    // hash join emits left row ++ right row in build/probe order: the
    // build side was `left`, so columns align with inl output.
    b.insert(key(t));
  }
  EXPECT_EQ(a, b);
}

TEST_F(RelTest, JoinsOnEmptyInputs) {
  auto a = db_.CreateTable("ea", TwoColumnSchema());
  auto b = db_.CreateTable("eb", TwoColumnSchema());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*b)->Insert({int64_t{1}, std::string("x")}).ok());
  auto nl =
      MakeNestedLoopJoin(MakeSeqScan(*a), MakeSeqScan(*b), 0, 0)->Collect();
  auto hj = MakeHashJoin(MakeSeqScan(*a), MakeSeqScan(*b), 0, 0)->Collect();
  ASSERT_TRUE(nl.ok() && hj.ok());
  EXPECT_TRUE(nl->empty());
  EXPECT_TRUE(hj->empty());
}

TEST_F(RelTest, ResetRestartsSources) {
  auto t = db_.CreateTable("rr", TwoColumnSchema());
  ASSERT_TRUE(t.ok());
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE((*t)->Insert({i, "v"}).ok());
  }
  auto scan = MakeSeqScan(*t);
  Tuple row;
  ASSERT_TRUE(*scan->Next(&row));
  ASSERT_TRUE(*scan->Next(&row));
  ASSERT_TRUE(scan->Reset().ok());
  int count = 0;
  while (*scan->Next(&row)) ++count;
  EXPECT_EQ(count, 5);
}

TEST_F(RelTest, FloatColumnsRoundTripAndJoin) {
  Schema schema({{"k", ColumnType::kInt}, {"w", ColumnType::kFloat}});
  auto t = db_.CreateTable("fl", schema);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*t)->Insert({int64_t{1}, 2.5}).ok());
  ASSERT_TRUE((*t)->Insert({int64_t{2}, -0.125}).ok());
  auto rows = MakeSeqScan(*t)->Collect();
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ(std::get<double>((*rows)[1][1]), -0.125);
}

}  // namespace
}  // namespace educe::rel
