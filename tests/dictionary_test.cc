#include "dict/dictionary.h"

#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "base/hash.h"
#include "base/rng.h"

namespace educe::dict {
namespace {

TEST(DictionaryTest, InternReturnsStableIds) {
  Dictionary dict;
  auto foo = dict.Intern("foo", 0);
  ASSERT_TRUE(foo.ok());
  auto foo2 = dict.Intern("foo", 0);
  ASSERT_TRUE(foo2.ok());
  EXPECT_EQ(*foo, *foo2);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, ArityDistinguishesSymbols) {
  Dictionary dict;
  auto foo0 = dict.Intern("foo", 0);
  auto foo2 = dict.Intern("foo", 2);
  ASSERT_TRUE(foo0.ok());
  ASSERT_TRUE(foo2.ok());
  EXPECT_NE(*foo0, *foo2);
  EXPECT_EQ(dict.ArityOf(*foo0), 0u);
  EXPECT_EQ(dict.ArityOf(*foo2), 2u);
}

TEST(DictionaryTest, LookupFindsInterned) {
  Dictionary dict;
  EXPECT_FALSE(dict.Lookup("bar", 1).has_value());
  auto bar = dict.Intern("bar", 1);
  ASSERT_TRUE(bar.ok());
  auto found = dict.Lookup("bar", 1);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, *bar);
}

TEST(DictionaryTest, NameAndHashRoundTrip) {
  Dictionary dict;
  auto id = dict.Intern("hello_world", 3);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(dict.NameOf(*id), "hello_world");
  EXPECT_EQ(dict.HashOf(*id), base::HashFunctor("hello_world", 3));
}

TEST(DictionaryTest, RemoveMakesSlotReusableWithoutRelocation) {
  Dictionary dict;
  auto a = dict.Intern("a", 0);
  auto b = dict.Intern("b", 0);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(dict.Remove(*a).ok());
  EXPECT_FALSE(dict.IsLive(*a));
  // b is untouched (paper point 4: no relocation).
  EXPECT_TRUE(dict.IsLive(*b));
  EXPECT_EQ(dict.NameOf(*b), "b");
  // Removing again fails.
  EXPECT_FALSE(dict.Remove(*a).ok());
}

TEST(DictionaryTest, RemovedSymbolCanBeReinterned) {
  Dictionary dict;
  auto a = dict.Intern("transient", 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(dict.Remove(*a).ok());
  auto a2 = dict.Intern("transient", 5);
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(dict.IsLive(*a2));
  EXPECT_EQ(dict.NameOf(*a2), "transient");
}

TEST(DictionaryTest, SegmentsChainedPastHighWater) {
  Dictionary::Options options;
  options.segment_capacity = 64;
  options.high_water = 0.70;
  Dictionary dict(options);
  // Fill well past one segment's high-water mark.
  for (int i = 0; i < 200; ++i) {
    auto id = dict.Intern("sym" + std::to_string(i), 0);
    ASSERT_TRUE(id.ok());
  }
  EXPECT_GE(dict.segment_count(), 3u);
  EXPECT_EQ(dict.size(), 200u);
  // All lookups still resolve.
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(dict.Lookup("sym" + std::to_string(i), 0).has_value())
        << "sym" << i;
  }
}

TEST(DictionaryTest, OccupancyStaysBelowOneAlways) {
  Dictionary::Options options;
  options.segment_capacity = 32;
  Dictionary dict(options);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(dict.Intern("x" + std::to_string(i), 0).ok());
  }
  for (size_t s = 0; s < dict.segment_count(); ++s) {
    EXPECT_LE(dict.SegmentOccupancy(s), 1.0);
  }
}

TEST(DictionaryTest, TombstoneReuseCountsInStats) {
  Dictionary::Options options;
  options.segment_capacity = 32;
  options.high_water = 0.99;  // keep everything in one segment
  Dictionary dict(options);
  std::vector<SymbolId> ids;
  for (int i = 0; i < 20; ++i) {
    auto id = dict.Intern("t" + std::to_string(i), 0);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (SymbolId id : ids) ASSERT_TRUE(dict.Remove(id).ok());
  dict.ResetStats();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(dict.Intern("u" + std::to_string(i), 0).ok());
  }
  EXPECT_GT(dict.stats().slot_reuses, 0u);
}

// Property test: a random interleaving of intern/remove/lookup agrees with
// a reference std::map model.
class DictionaryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DictionaryPropertyTest, AgreesWithModel) {
  base::Rng rng(GetParam());
  Dictionary::Options options;
  options.segment_capacity = 64;
  Dictionary dict(options);

  std::map<std::pair<std::string, uint32_t>, SymbolId> model;
  for (int step = 0; step < 3000; ++step) {
    const std::string name = "n" + std::to_string(rng.Below(300));
    const uint32_t arity = static_cast<uint32_t>(rng.Below(3));
    const auto key = std::make_pair(name, arity);
    switch (rng.Below(3)) {
      case 0: {  // intern
        auto id = dict.Intern(name, arity);
        ASSERT_TRUE(id.ok());
        auto it = model.find(key);
        if (it != model.end()) {
          EXPECT_EQ(*id, it->second) << "existing symbol must keep its id";
        } else {
          model[key] = *id;
        }
        break;
      }
      case 1: {  // remove
        auto it = model.find(key);
        if (it != model.end()) {
          EXPECT_TRUE(dict.Remove(it->second).ok());
          model.erase(it);
        }
        break;
      }
      default: {  // lookup
        auto found = dict.Lookup(name, arity);
        auto it = model.find(key);
        EXPECT_EQ(found.has_value(), it != model.end());
        if (found && it != model.end()) {
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(dict.size(), model.size());
  // Ids in the model are unique.
  std::set<SymbolId> ids;
  for (const auto& [key, id] : model) {
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id";
    EXPECT_EQ(dict.NameOf(id), key.first);
    EXPECT_EQ(dict.ArityOf(id), key.second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictionaryPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

}  // namespace
}  // namespace educe::dict
