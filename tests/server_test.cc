// Query-server tests (DESIGN.md §13): the JSON line protocol against
// adversarial input, real streaming (bindings arrive while enumeration
// is still running), session-pool recovery when clients die mid-stream,
// admission shedding, and the metrics endpoints. The concurrent-clients
// test doubles as the TSan workout for the server's threading (run via
// scripts/check_sanitizers.sh thread).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "educe/engine.h"
#include "server/admission.h"
#include "server/json.h"
#include "server/server.h"
#include "server/session_pool.h"

namespace educe::server {
namespace {

// --- JSON parser unit tests -------------------------------------------------

TEST(JsonTest, ParsesObjectsStringsAndNumbers) {
  auto doc = ParseJson(
      R"json({"op":"query","goal":"nat(X)","id":7,"limit":10,"deep":{"a":[1,2,true,null]}})json");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(doc->is_object());
  EXPECT_EQ(doc->GetString("op"), "query");
  EXPECT_EQ(doc->GetString("goal"), "nat(X)");
  EXPECT_EQ(doc->GetUint("id"), 7u);
  EXPECT_EQ(doc->GetUint("limit"), 10u);
  EXPECT_EQ(doc->GetUint("missing", 42), 42u);
  const JsonValue* deep = doc->Find("deep");
  ASSERT_NE(deep, nullptr);
  const JsonValue* arr = deep->Find("a");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->array.size(), 4u);
  EXPECT_EQ(arr->array[0].number, 1.0);
  EXPECT_EQ(arr->array[2].kind, JsonValue::Kind::kBool);
  EXPECT_EQ(arr->array[3].kind, JsonValue::Kind::kNull);
}

TEST(JsonTest, DecodesEscapesIncludingSurrogatePairs) {
  auto doc = ParseJson(R"json({"s":"a\"b\\c\nd\u0041\u00e9\ud83d\ude00"})json");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->GetString("s"), "a\"b\\c\ndA\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("not json").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{\"a\":01x}").ok());
  EXPECT_FALSE(ParseJson("truthy").ok());
  EXPECT_FALSE(ParseJson("{\"a\":\"\\q\"}").ok());      // unknown escape
  EXPECT_FALSE(ParseJson("{\"a\":\"\\ud800\"}").ok());  // unpaired surrogate
  EXPECT_FALSE(ParseJson("{\"a\":\"\x01\"}").ok());     // raw control char
}

TEST(JsonTest, BoundsNestingDepth) {
  std::string nested(40, '[');
  nested += std::string(40, ']');
  EXPECT_FALSE(ParseJson(nested, 32).ok());
  EXPECT_TRUE(ParseJson(nested, 64).ok());
}

TEST(JsonTest, RejectsInvalidUtf8InStrings) {
  // 0xC3 0x28: truncated 2-byte sequence; 0xED 0xA0 0x80: encoded
  // surrogate; 0xC0 0xAF: overlong '/'.
  EXPECT_FALSE(ParseJson("{\"a\":\"\xC3\x28\"}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":\"\xED\xA0\x80\"}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":\"\xC0\xAF\"}").ok());
  EXPECT_TRUE(ParseJson("{\"a\":\"\xC3\xA9\"}").ok());  // é is fine raw
}

TEST(JsonTest, ValidUtf8Classifies) {
  EXPECT_TRUE(ValidUtf8("plain ascii"));
  EXPECT_TRUE(ValidUtf8("caf\xC3\xA9 \xF0\x9F\x98\x80"));
  EXPECT_FALSE(ValidUtf8("\xFF"));
  EXPECT_FALSE(ValidUtf8("\x80"));                  // stray continuation
  EXPECT_FALSE(ValidUtf8("\xE2\x82"));              // truncated 3-byte
  EXPECT_FALSE(ValidUtf8("\xF4\x90\x80\x80"));      // > U+10FFFF
}

TEST(JsonTest, QuoteEscapesControls) {
  EXPECT_EQ(JsonQuote("a\"b\\c\nd\x01"), "\"a\\\"b\\\\c\\nd\\u0001\"");
}

// --- TCP test client --------------------------------------------------------

/// Minimal blocking line client with a receive timeout so a server bug
/// fails the test instead of hanging it.
class Client {
 public:
  ~Client() { Close(); }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval tv{20, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool SendRaw(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendLine(std::string line) {
    line += '\n';
    return SendRaw(line);
  }

  /// Reads one '\n'-terminated line (stripped). False on EOF/timeout.
  bool ReadLine(std::string* line) {
    while (true) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Reads to EOF, returning everything (for the HTTP one-shot paths).
  std::string ReadAll() {
    std::string out = buf_;
    buf_.clear();
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      out.append(chunk, static_cast<size_t>(n));
    }
    return out;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buf_.clear();
  }

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buf_;
};

JsonValue MustParse(const std::string& line) {
  auto doc = ParseJson(line);
  EXPECT_TRUE(doc.ok()) << doc.status() << " parsing: " << line;
  return doc.ok() ? *doc : JsonValue{};
}

bool WaitFor(const std::function<bool()>& cond, int timeout_ms = 15000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

std::string ItemFacts(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += "item(" + std::to_string(i) + ", " + std::to_string(2 * i) + "). ";
  }
  return out;
}

// --- server tests -----------------------------------------------------------

TEST(ServerTest, AnswersPingAndFiniteQuery) {
  Engine engine;
  ASSERT_TRUE(engine.DeclareRelation("item", 2).ok());
  ASSERT_TRUE(engine.StoreFactsExternal(ItemFacts(10)).ok());
  ServerOptions options;
  options.pool_sessions = 2;
  options.handler_threads = 2;
  QueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.SendLine(R"json({"op":"ping","id":3})json"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(MustParse(line).GetString("type"), "pong");

  ASSERT_TRUE(client.SendLine(R"json({"op":"query","goal":"item(X, Y)","id":4})json"));
  int bindings = 0;
  while (true) {
    ASSERT_TRUE(client.ReadLine(&line));
    const JsonValue doc = MustParse(line);
    const std::string type = doc.GetString("type");
    if (type == "binding") {
      EXPECT_EQ(doc.GetUint("id"), 4u);
      const JsonValue* b = doc.Find("bindings");
      ASSERT_NE(b, nullptr);
      EXPECT_NE(b->Find("X"), nullptr);
      EXPECT_NE(b->Find("Y"), nullptr);
      ++bindings;
      continue;
    }
    ASSERT_EQ(type, "done") << line;
    EXPECT_EQ(doc.GetUint("count"), 10u);
    break;
  }
  EXPECT_EQ(bindings, 10);
  server.Stop();
  EXPECT_EQ(server.stats().queries_ok, 1u);
}

TEST(ServerTest, StreamsBindingsWhileEnumerationStillRunning) {
  // nat/1 enumerates 0,1,2,... forever; the query never completes. Any
  // binding the client receives therefore *proves* the server pushes
  // solutions per Solutions::Next instead of buffering the result set —
  // a buffering server would never write a byte.
  Engine engine;
  ASSERT_TRUE(engine.Consult("nat(0). nat(X) :- nat(Y), X is Y + 1.").ok());
  ServerOptions options;
  options.pool_sessions = 1;
  options.handler_threads = 1;
  options.write_timeout_ms = 5000;
  QueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.SendLine(R"json({"op":"query","goal":"nat(X)","id":1})json"));
  for (int i = 0; i < 3; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line));
    const JsonValue doc = MustParse(line);
    ASSERT_EQ(doc.GetString("type"), "binding") << line;
    const JsonValue* b = doc.Find("bindings");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->GetString("X"), std::to_string(i));
    EXPECT_EQ(doc.GetUint("seq"), static_cast<uint64_t>(i));
  }

  // Kill the client mid-stream. The server discovers the dead peer on a
  // failed send, destroys the Solutions mid-enumeration, and returns the
  // session to the pool.
  client.Close();
  EXPECT_TRUE(WaitFor([&] { return server.pool()->idle() == 1u; }))
      << "session not released after client death";
  EXPECT_TRUE(WaitFor([&] { return server.stats().active == 0u; }));
  EXPECT_EQ(server.stats().queries_aborted, 1u);

  // The recycled session still works.
  Client again;
  ASSERT_TRUE(again.Connect(server.port()));
  ASSERT_TRUE(
      again.SendLine(R"json({"op":"query","goal":"nat(X)","id":2,"limit":2})json"));
  std::string line;
  ASSERT_TRUE(again.ReadLine(&line));
  EXPECT_EQ(MustParse(line).GetString("type"), "binding");
  ASSERT_TRUE(again.ReadLine(&line));
  ASSERT_TRUE(again.ReadLine(&line));
  const JsonValue done = MustParse(line);
  EXPECT_EQ(done.GetString("type"), "done");
  EXPECT_EQ(done.GetUint("count"), 2u);
  const JsonValue* more = done.Find("more");
  ASSERT_NE(more, nullptr);
  EXPECT_TRUE(more->bool_value);
  server.Stop();
}

TEST(ServerTest, SurvivesAdversarialInput) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1).").ok());
  ServerOptions options;
  options.pool_sessions = 1;
  options.handler_threads = 1;
  QueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  const std::vector<std::string> bad = {
      "not json at all",
      "[1,2,3]",                          // not an object
      R"json({"op":"query"})json",                // missing goal
      R"json({"op":"query","goal":42})json",      // goal not a string
      R"json({"op":"frobnicate"})json",           // unknown op
      "{\"op\":\"ping\",\"x\":\"\xC3\x28\"}",  // invalid UTF-8 in string
      std::string(40, '[') + std::string(40, ']'),  // nesting bomb
      R"json({"op":"query","goal":"p(("})json",   // Prolog syntax error
  };
  for (const std::string& line : bad) {
    ASSERT_TRUE(client.SendLine(line)) << line;
    std::string response;
    ASSERT_TRUE(client.ReadLine(&response)) << line;
    EXPECT_EQ(MustParse(response).GetString("type"), "error") << line;
  }
  // The connection survived all of it.
  ASSERT_TRUE(client.SendLine(R"json({"op":"query","goal":"p(X)","id":9})json"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(MustParse(response).GetString("type"), "binding");
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(MustParse(response).GetString("type"), "done");
  server.Stop();
}

TEST(ServerTest, OversizedLineIsRefusedAndConnectionClosed) {
  Engine engine;
  ServerOptions options;
  options.pool_sessions = 1;
  options.handler_threads = 1;
  options.max_line_bytes = 1024;
  QueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.SendRaw(std::string(4096, 'a')));  // no newline
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  const JsonValue doc = MustParse(line);
  EXPECT_EQ(doc.GetString("type"), "error");
  EXPECT_EQ(doc.GetString("code"), "line_too_long");
  EXPECT_FALSE(client.ReadLine(&line));  // server closed the connection
  EXPECT_TRUE(WaitFor([&] { return server.stats().active == 0u; }));
  server.Stop();
}

TEST(ServerTest, MidMessageDisconnectCleansUp) {
  Engine engine;
  ServerOptions options;
  options.pool_sessions = 1;
  options.handler_threads = 1;
  QueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.SendRaw(R"json({"op":"qu)json"));  // half a message
  EXPECT_TRUE(WaitFor([&] { return server.stats().accepted == 1u; }));
  client.Close();
  EXPECT_TRUE(WaitFor([&] { return server.stats().active == 0u; }));
  EXPECT_EQ(server.pool()->idle(), 1u);  // never acquired
  server.Stop();
}

TEST(ServerTest, ShedsWhenPoolBusyAndRecoversAfterRelease) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("nat(0). nat(X) :- nat(Y), X is Y + 1.").ok());
  ServerOptions options;
  options.pool_sessions = 1;
  options.handler_threads = 2;  // so the shed victim has its own handler
  options.queue_wait_ms = 50;
  options.write_timeout_ms = 30000;
  QueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  // Client A occupies the only session with an endless stream it stops
  // reading; B must then be shed after the 50 ms queue wait.
  Client a;
  ASSERT_TRUE(a.Connect(server.port()));
  ASSERT_TRUE(a.SendLine(R"json({"op":"query","goal":"nat(X)","id":1})json"));
  std::string line;
  ASSERT_TRUE(a.ReadLine(&line));  // query is definitely running

  Client b;
  ASSERT_TRUE(b.Connect(server.port()));
  ASSERT_TRUE(b.SendLine(R"json({"op":"query","goal":"nat(X)","id":2,"limit":1})json"));
  ASSERT_TRUE(b.ReadLine(&line));
  const JsonValue shed = MustParse(line);
  EXPECT_EQ(shed.GetString("type"), "error");
  EXPECT_EQ(shed.GetString("code"), "unavailable");
  EXPECT_GE(server.admission()->shed_timeout(), 1u);

  // A dies; the session comes back; B's retry succeeds.
  a.Close();
  EXPECT_TRUE(WaitFor([&] { return server.pool()->idle() == 1u; }));
  ASSERT_TRUE(b.SendLine(R"json({"op":"query","goal":"nat(X)","id":3,"limit":1})json"));
  ASSERT_TRUE(b.ReadLine(&line));
  EXPECT_EQ(MustParse(line).GetString("type"), "binding");
  ASSERT_TRUE(b.ReadLine(&line));
  EXPECT_EQ(MustParse(line).GetString("type"), "done");
  server.Stop();
}

TEST(ServerTest, MemoryPressureShedsImmediately) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1).").ok());
  std::atomic<bool> pressured{true};
  ServerOptions options;
  options.pool_sessions = 1;
  options.handler_threads = 1;
  options.queue_wait_ms = 10000;  // would park forever if queueing applied
  options.pressure_fn = [&pressured] { return pressured.load(); };
  QueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  // Stage 1: pressure on but the pool idle — the try-acquire still
  // admits (pressure only disables queueing, it never refuses capacity
  // that exists right now).
  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(
      client.SendLine(R"json({"op":"query","goal":"p(X)","id":1,"limit":1})json"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(MustParse(line).GetString("type"), "binding");
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(MustParse(line).GetString("type"), "done");

  // Stage 2: pressure on and the pool drained (simulated by acquiring
  // the only session out from under the server) -> immediate shed, no
  // 10-second queue wait. The handler thread releases the session
  // asynchronously after writing "done", so wait for it rather than
  // try-acquire (which races the release on slow hosts).
  Session* hog = server.pool()->Acquire(2000);
  ASSERT_NE(hog, nullptr);
  const auto before = std::chrono::steady_clock::now();
  ASSERT_TRUE(client.SendLine(R"json({"op":"query","goal":"p(X)","id":2})json"));
  ASSERT_TRUE(client.ReadLine(&line));
  const auto elapsed = std::chrono::steady_clock::now() - before;
  const JsonValue doc = MustParse(line);
  EXPECT_EQ(doc.GetString("type"), "error");
  EXPECT_EQ(doc.GetString("code"), "unavailable");
  EXPECT_NE(doc.GetString("message").find("pressure"), std::string::npos);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000)
      << "pressure shed must bypass the queue wait";
  EXPECT_GE(server.admission()->shed_pressure(), 1u);

  // Pressure off, session back -> queueing admission works again.
  pressured = false;
  server.pool()->Release(hog);
  ASSERT_TRUE(
      client.SendLine(R"json({"op":"query","goal":"p(X)","id":3,"limit":1})json"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(MustParse(line).GetString("type"), "binding");
  server.Stop();
}

TEST(ServerTest, MetricsOverProtocolAndHttp) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1).").ok());
  ServerOptions options;
  options.pool_sessions = 1;
  options.handler_threads = 1;
  QueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.SendLine(R"json({"op":"metrics"})json"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  const JsonValue doc = MustParse(line);
  EXPECT_EQ(doc.GetString("type"), "metrics");
  const JsonValue* data = doc.Find("data");
  ASSERT_NE(data, nullptr);
  EXPECT_TRUE(data->is_object());
  EXPECT_NE(data->Find("query_latency_ns"), nullptr);
  client.Close();

  Client http;
  ASSERT_TRUE(http.Connect(server.port()));
  ASSERT_TRUE(http.SendRaw("GET /metrics HTTP/1.0\r\n\r\n"));
  std::string response = http.ReadAll();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_TRUE(ParseJson(response.substr(body_at + 4)).ok());
  http.Close();

  Client stats;
  ASSERT_TRUE(stats.Connect(server.port()));
  ASSERT_TRUE(stats.SendRaw("GET /server HTTP/1.0\r\n\r\n"));
  response = stats.ReadAll();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"pool\""), std::string::npos);
  stats.Close();

  Client missing;
  ASSERT_TRUE(missing.Connect(server.port()));
  ASSERT_TRUE(missing.SendRaw("GET /nope HTTP/1.0\r\n\r\n"));
  EXPECT_NE(missing.ReadAll().find("404"), std::string::npos);
  server.Stop();
}

TEST(ServerTest, ManyConcurrentClientsGetCorrectAnswers) {
  Engine engine;
  constexpr int kRows = 30;
  ASSERT_TRUE(engine.DeclareRelation("item", 2).ok());
  ASSERT_TRUE(engine.StoreFactsExternal(ItemFacts(kRows)).ok());
  ServerOptions options;
  options.pool_sessions = 4;
  options.handler_threads = 4;
  options.queue_wait_ms = 30000;  // queue, don't shed: assert correctness
  QueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 12;
  constexpr int kQueriesEach = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect(server.port())) {
        ++failures;
        return;
      }
      for (int q = 0; q < kQueriesEach; ++q) {
        const uint64_t id = static_cast<uint64_t>(c * 100 + q);
        if (!client.SendLine(R"json({"op":"query","goal":"item(X, Y)","id":)json" +
                             std::to_string(id) + "}")) {
          ++failures;
          return;
        }
        int bindings = 0;
        while (true) {
          std::string line;
          if (!client.ReadLine(&line)) {
            ++failures;
            return;
          }
          auto doc = ParseJson(line);
          if (!doc.ok()) {
            ++failures;
            return;
          }
          const std::string type = doc->GetString("type");
          if (type == "binding") {
            if (doc->GetUint("id") != id) ++failures;
            ++bindings;
            continue;
          }
          if (type != "done" || bindings != kRows ||
              doc->GetUint("count") != static_cast<uint64_t>(kRows)) {
            ++failures;
          }
          break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const QueryServer::Stats stats = server.stats();
  EXPECT_EQ(stats.queries_ok, static_cast<uint64_t>(kClients * kQueriesEach));
  EXPECT_EQ(stats.bindings_sent,
            static_cast<uint64_t>(kClients * kQueriesEach * kRows));
  server.Stop();
  EXPECT_EQ(engine.active_sessions(), 0u);  // pool retired, engine unfrozen
}

TEST(ServerTest, StopWithConnectedIdleClientsIsClean) {
  Engine engine;
  ServerOptions options;
  options.pool_sessions = 1;
  options.handler_threads = 2;
  QueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());
  Client a, b;
  ASSERT_TRUE(a.Connect(server.port()));
  ASSERT_TRUE(b.Connect(server.port()));
  EXPECT_TRUE(WaitFor([&] { return server.stats().active == 2u; }));
  server.Stop();  // must not hang on the idle connections
  std::string line;
  EXPECT_FALSE(a.ReadLine(&line));  // server closed both sides
  EXPECT_FALSE(b.ReadLine(&line));
  EXPECT_EQ(engine.active_sessions(), 0u);
}

}  // namespace
}  // namespace educe::server
