// Concurrency tests for worker sessions over a shared EDB (DESIGN.md §10):
// shared-substrate safety (dictionary, clause store, code cache), overlay
// isolation, invalidation under load, and the engine's session guards.
// Run under TSan via scripts/check_sanitizers.sh thread.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dict/dictionary.h"
#include "educe/engine.h"

namespace educe {
namespace {

std::string ItemFacts(int n) {
  std::ostringstream out;
  for (int i = 0; i < n; ++i) {
    out << "item(" << i << ", " << 2 * i << "). ";
  }
  return out.str();
}

TEST(ParallelTest, ConcurrentInterningIsConsistent) {
  dict::Dictionary dictionary;
  constexpr int kThreads = 8;
  constexpr int kNames = 500;
  // Every thread interns the same overlapping name set; ids must be
  // unique per (name, arity) regardless of interleaving.
  std::vector<std::vector<dict::SymbolId>> ids(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ids[t].resize(kNames);
      for (int i = 0; i < kNames; ++i) {
        auto id = dictionary.Intern("sym" + std::to_string(i), i % 4);
        if (!id.ok()) {
          ++failures;
          return;
        }
        ids[t][i] = *id;
        if (!dictionary.IsLive(*id)) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]) << "thread " << t << " saw different ids";
  }
  for (int i = 0; i < kNames; ++i) {
    EXPECT_EQ(dictionary.NameOf(ids[0][i]), "sym" + std::to_string(i));
  }
}

TEST(ParallelTest, ConcurrentFactQueriesAgree) {
  Engine engine;
  constexpr int kRows = 300;
  ASSERT_TRUE(engine.DeclareRelation("item", 2).ok());
  ASSERT_TRUE(engine.StoreFactsExternal(ItemFacts(kRows)).ok());

  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    auto session = engine.OpenSession();
    ASSERT_TRUE(session.ok()) << session.status();
    threads.emplace_back(
        [&failures, s = std::move(*session)]() mutable {
          for (int round = 0; round < kRounds; ++round) {
            auto all = s->CountSolutions("item(X, Y)");
            if (!all.ok() || *all != kRows) ++failures;
            auto one = s->CountSolutions("item(7, Y)");
            if (!one.ok() || *one != 1) ++failures;
          }
        });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.active_sessions(), 0u);
}

TEST(ParallelTest, ConcurrentCompiledRuleQueriesShareCache) {
  Engine engine;
  constexpr int kRows = 120;
  ASSERT_TRUE(engine.DeclareRelation("item", 2).ok());
  ASSERT_TRUE(engine.StoreFactsExternal(ItemFacts(kRows)).ok());
  ASSERT_TRUE(engine.StoreRulesExternal("pair(X, Y) :- item(X, Y).").ok());
  engine.ResetStats();

  constexpr int kThreads = 4;
  constexpr int kRounds = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    auto session = engine.OpenSession();
    ASSERT_TRUE(session.ok()) << session.status();
    threads.emplace_back(
        [&failures, s = std::move(*session)]() mutable {
          for (int round = 0; round < kRounds; ++round) {
            auto count = s->CountSolutions("pair(X, Y)");
            if (!count.ok() || *count != kRows) ++failures;
          }
        });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // One load decodes and links; every other session round hits the shared
  // cache entry.
  EngineStats stats = engine.Stats();
  EXPECT_GE(stats.code_cache.hits + stats.code_cache.pattern_hits +
                stats.code_cache.selection_hits,
            static_cast<uint64_t>(kThreads * kRounds - kThreads));
  EXPECT_GE(engine.loader()->cache()->entry_count(), 1u);
}

TEST(ParallelTest, SessionOverlayAssertIsIsolated) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1). p(2).").ok());
  auto s1 = engine.OpenSession();
  auto s2 = engine.OpenSession();
  ASSERT_TRUE(s1.ok() && s2.ok());

  auto asserted = (*s1)->Succeeds("assertz(p(3))");
  ASSERT_TRUE(asserted.ok()) << asserted.status();
  EXPECT_TRUE(*asserted);

  auto in_s1 = (*s1)->CountSolutions("p(X)");
  ASSERT_TRUE(in_s1.ok());
  EXPECT_EQ(*in_s1, 3u);  // copy-on-write shadow sees base + own assert

  auto in_s2 = (*s2)->CountSolutions("p(X)");
  ASSERT_TRUE(in_s2.ok());
  EXPECT_EQ(*in_s2, 2u);  // sibling overlay never sees it

  s1->reset();
  s2->reset();
  auto in_base = engine.CountSolutions("p(X)");
  ASSERT_TRUE(in_base.ok());
  EXPECT_EQ(*in_base, 2u);  // the shared base was never written
}

TEST(ParallelTest, QueryScaffoldingIsolatedAcrossSessions) {
  // Disjunctions compile auxiliary predicates; with per-session aux-name
  // ranges the overlays must never shadow each other's $aux/$query procs.
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1). p(2). p(3). q(4). q(5).").ok());
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    auto session = engine.OpenSession();
    ASSERT_TRUE(session.ok()) << session.status();
    threads.emplace_back(
        [&failures, s = std::move(*session)]() mutable {
          for (int round = 0; round < kRounds; ++round) {
            auto count = s->CountSolutions("(p(X) ; q(X))");
            if (!count.ok() || *count != 5) ++failures;
            auto found = s->Succeeds("findall(X, p(X), [_, _, _])");
            if (!found.ok() || !*found) ++failures;
          }
        });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ParallelTest, InvalidationUnderLoadServesOldOrNewCode) {
  // A writer keeps appending clauses to an external compiled rule while
  // reader sessions execute it. Every observed solution count must equal
  // a clause-set snapshot (a multiple of the per-clause count) — stale
  // complete code is fine, torn code is not.
  Engine engine;
  constexpr int kRows = 20;
  constexpr int kAppends = 30;
  ASSERT_TRUE(engine.DeclareRelation("r", 1).ok());
  std::ostringstream facts;
  for (int i = 0; i < kRows; ++i) facts << "r(" << i << "). ";
  ASSERT_TRUE(engine.StoreFactsExternal(facts.str()).ok());
  ASSERT_TRUE(engine.StoreRulesExternal("s(X) :- r(X).").ok());

  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    auto session = engine.OpenSession();
    ASSERT_TRUE(session.ok()) << session.status();
    readers.emplace_back(
        [&failures, &writer_done, s = std::move(*session)]() mutable {
          while (!writer_done.load(std::memory_order_acquire)) {
            auto count = s->CountSolutions("s(X)");
            if (!count.ok() || *count == 0 || *count % kRows != 0 ||
                *count > kRows * (kAppends + 1)) {
              ++failures;
            }
          }
        });
  }
  for (int i = 0; i < kAppends; ++i) {
    // Plain clauses (no control constructs) may be stored under load;
    // each append bumps the version and push-invalidates cached code.
    ASSERT_TRUE(engine.StoreRulesExternal("s(X) :- r(X).").ok());
  }
  writer_done.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();
  EXPECT_EQ(failures.load(), 0);

  auto final_count = engine.CountSolutions("s(X)");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(*final_count, static_cast<uint64_t>(kRows * (kAppends + 1)));
}

TEST(ParallelTest, EngineOpsRefusedWhileSessionsActive) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1).").ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(engine.active_sessions(), 1u);

  EXPECT_TRUE(engine.Query("p(X)").status().IsFailedPrecondition());
  EXPECT_TRUE(engine.Consult("p(2).").IsFailedPrecondition());
  EXPECT_TRUE(engine.CollectDictionary().status().IsFailedPrecondition());
  // Control constructs need aux clauses in the frozen base program.
  EXPECT_TRUE(engine.StoreRulesExternal("t(X) :- (p(X) ; p(X)).")
                  .IsFailedPrecondition());

  // The session itself still works, and the EDB remains writable.
  auto ok = (*session)->Succeeds("p(1)");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  EXPECT_TRUE(engine.StoreFactsExternal("live(1).").ok());

  session->reset();
  EXPECT_EQ(engine.active_sessions(), 0u);
  EXPECT_TRUE(engine.Query("p(X)").ok());
  EXPECT_TRUE(engine.Consult("p(2).").ok());
}

TEST(ParallelTest, CloseRefusedWhileSessionsActive) {
  const std::string path = testing::TempDir() + "parallel_close_test.edb";
  std::remove(path.c_str());
  EngineOptions options;
  options.db_path = path;
  {
    Engine engine(options);
    ASSERT_TRUE(engine.DeclareRelation("item", 2).ok());
    ASSERT_TRUE(engine.StoreFactsExternal("item(1, 2).").ok());
    auto session = engine.OpenSession();
    ASSERT_TRUE(session.ok());
    EXPECT_TRUE(engine.Close().IsFailedPrecondition());
    session->reset();
    EXPECT_TRUE(engine.Close().ok());
  }
  // The image written after the session retired must reopen cleanly.
  Engine reopened(options);
  EXPECT_TRUE(reopened.attached());
  auto count = reopened.CountSolutions("item(X, Y)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  std::remove(path.c_str());
}

TEST(ParallelTest, SolveParallelMatchesSequential) {
  Engine engine;
  constexpr int kRows = 100;
  ASSERT_TRUE(engine.DeclareRelation("item", 2).ok());
  ASSERT_TRUE(engine.StoreFactsExternal(ItemFacts(kRows)).ok());
  ASSERT_TRUE(engine.StoreRulesExternal("pair(X, Y) :- item(X, Y).").ok());

  std::vector<std::string> goals;
  for (int i = 0; i < 40; ++i) {
    goals.push_back("item(" + std::to_string(i % kRows) + ", Y)");
    goals.push_back("pair(X, " + std::to_string(2 * (i % kRows)) + ")");
  }
  auto sequential = engine.SolveParallel(goals, 1, /*collect_bindings=*/true);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto parallel = engine.SolveParallel(goals, 4, /*collect_bindings=*/true);
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  ASSERT_EQ(sequential->size(), goals.size());
  ASSERT_EQ(parallel->size(), goals.size());
  for (size_t i = 0; i < goals.size(); ++i) {
    EXPECT_EQ((*parallel)[i].count, (*sequential)[i].count) << goals[i];
    std::multiset<std::string> seq_rows((*sequential)[i].rows.begin(),
                                        (*sequential)[i].rows.end());
    std::multiset<std::string> par_rows((*parallel)[i].rows.begin(),
                                        (*parallel)[i].rows.end());
    EXPECT_EQ(par_rows, seq_rows) << goals[i];
  }
}

TEST(ParallelTest, SolveParallelSurfacesErrors) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1).").ok());
  std::vector<std::string> goals = {"p(X)", "p(X"};  // second is malformed
  auto result = engine.SolveParallel(goals, 2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(engine.active_sessions(), 0u);
}

TEST(ParallelTest, StatsAggregateAcrossSessions) {
  Engine engine;
  constexpr int kRows = 50;
  ASSERT_TRUE(engine.DeclareRelation("item", 2).ok());
  ASSERT_TRUE(engine.StoreFactsExternal(ItemFacts(kRows)).ok());
  engine.ResetStats();

  std::vector<std::string> goals;
  for (int i = 0; i < 64; ++i) {
    goals.push_back("item(" + std::to_string(i % kRows) + ", Y)");
  }
  auto result = engine.SolveParallel(goals, 4);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const SolveOutcome& outcome : *result) EXPECT_EQ(outcome.count, 1u);

  // Every goal is one EDB fact call; retired sessions must fold their
  // resolver counters into the aggregate exactly once.
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.resolver.fact_calls, goals.size());
  // Residency gauges stay coherent with the cache's own accounting.
  EXPECT_EQ(stats.code_cache.entries.load(),
            engine.loader()->cache()->entry_count());
}

TEST(ParallelTest, PerWorkerHistogramsMergeToSameTotals) {
  // DESIGN.md §11: each worker session records query latency into its own
  // histogram (no engine lock on the hot path) and merges it into the
  // engine-wide histogram at retirement. Merging is associative, so the
  // same goal batch run with 1 worker and with 4 workers must land the
  // same number of samples — and the same solution totals — whatever the
  // retirement order.
  Engine engine;
  constexpr int kRows = 40;
  ASSERT_TRUE(engine.DeclareRelation("item", 2).ok());
  ASSERT_TRUE(engine.StoreFactsExternal(ItemFacts(kRows)).ok());

  std::vector<std::string> goals;
  for (int i = 0; i < 48; ++i) {
    goals.push_back("item(" + std::to_string(i % kRows) + ", Y)");
  }

  engine.ResetStats();
  auto single = engine.SolveParallel(goals, 1);
  ASSERT_TRUE(single.ok()) << single.status();
  const obs::Histogram single_latency = engine.QueryLatencyHistogram();
  EXPECT_EQ(single_latency.count(), goals.size());

  engine.ResetStats();
  auto parallel = engine.SolveParallel(goals, 4);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  const obs::Histogram merged_latency = engine.QueryLatencyHistogram();
  EXPECT_EQ(merged_latency.count(), goals.size());

  uint64_t single_solutions = 0, parallel_solutions = 0;
  for (size_t i = 0; i < goals.size(); ++i) {
    single_solutions += (*single)[i].count;
    parallel_solutions += (*parallel)[i].count;
  }
  EXPECT_EQ(single_solutions, parallel_solutions);
  // Sample counts are exact; the recorded durations differ run to run,
  // but every sample must be accounted for (sum of all buckets == count).
  uint64_t bucket_sum = 0;
  for (uint64_t b : merged_latency.buckets()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, merged_latency.count());
}

TEST(ParallelTest, ProfilingUnderParallelQueriesIsClean) {
  // Profiled parallel runs exercise the tracer's thread-striped rings
  // and the obs mutex from every worker; under TSan this asserts the
  // recording paths are race-free. Counter-exactness across workers is
  // not asserted here (subsystem counters interleave), only coherence.
  EngineOptions options;
  options.profiling = true;
  Engine engine(options);
  constexpr int kRows = 30;
  ASSERT_TRUE(engine.DeclareRelation("item", 2).ok());
  ASSERT_TRUE(engine.StoreFactsExternal(ItemFacts(kRows)).ok());
  ASSERT_TRUE(engine.StoreRulesExternal("val(Y) :- item(_, Y).").ok());
  engine.ResetStats();

  std::vector<std::string> goals;
  for (int i = 0; i < 32; ++i) {
    goals.push_back(i % 2 == 0
                        ? "item(" + std::to_string(i % kRows) + ", Y)"
                        : "val(Y)");
  }
  auto result = engine.SolveParallel(goals, 4);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(engine.QueryLatencyHistogram().count(), goals.size());
  EXPECT_EQ(engine.RecentProfiles().size(),
            std::min<size_t>(goals.size(), 64));
  EXPECT_GT(engine.tracer()->recorded(), 0u);
  // The export assembles under the same locks the workers used.
  const std::string json = engine.ExportMetricsJson();
  EXPECT_NE(json.find("\"recent_queries\""), std::string::npos);
}

}  // namespace
}  // namespace educe
