// The observability layer (DESIGN.md §11): histogram bucket math and
// merge associativity, tracer span recording, per-query cost profiles
// with the paper's §3.2.1 choice-point-elimination counters, the metrics
// export document, and the slow-query log.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "educe/engine.h"
#include "obs/histogram.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace educe {
namespace {

// --- Histogram ------------------------------------------------------------

TEST(HistogramTest, BucketRoundTrip) {
  // Every value's bucket lower bound must land back in the same bucket,
  // and be no larger than the value (percentiles never overstate).
  const uint64_t samples[] = {0,    1,    3,         4,         5,         7,
                              8,    100,  1000,      123456789, UINT64_MAX};
  for (uint64_t v : samples) {
    const size_t index = obs::Histogram::BucketIndex(v);
    ASSERT_LT(index, obs::Histogram::kBuckets);
    const uint64_t lower = obs::Histogram::BucketLowerBound(index);
    EXPECT_LE(lower, v) << v;
    EXPECT_EQ(obs::Histogram::BucketIndex(lower), index) << v;
  }
}

TEST(HistogramTest, SmallValuesAreExact) {
  obs::Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 3u);
  EXPECT_EQ(h.Percentile(100), 3u);
  EXPECT_EQ(h.Percentile(25), 0u);
}

TEST(HistogramTest, PercentilesBracketTheSamples) {
  obs::Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Record(i * 1000);  // 1us..1ms
  EXPECT_EQ(h.count(), 1000u);
  // Bucket lower bounds are within one octave sub-bucket (~12.5%) below
  // the true percentile value.
  const uint64_t p50 = h.Percentile(50);
  EXPECT_GE(p50, 400000u);
  EXPECT_LE(p50, 500000u);
  const uint64_t p99 = h.Percentile(99);
  EXPECT_GE(p99, 800000u);
  EXPECT_LE(p99, 990000u);
  EXPECT_EQ(h.Percentile(100), 1000000u);
  EXPECT_LE(h.Percentile(50), h.Percentile(95));
  EXPECT_LE(h.Percentile(95), h.Percentile(99));
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  // Merging is bucket-wise addition, so any merge tree over the same
  // samples must yield the identical histogram — the property that makes
  // per-worker instances safe to fold in any retirement order.
  obs::Histogram a, b, c;
  for (uint64_t i = 0; i < 100; ++i) a.Record(i * 7 + 1);
  for (uint64_t i = 0; i < 50; ++i) b.Record(i * 1000 + 13);
  for (uint64_t i = 0; i < 77; ++i) c.Record(i * i + 3);

  obs::Histogram left = a;  // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  obs::Histogram right = b;  // a + (b + c)
  right.Merge(c);
  obs::Histogram right_total = a;
  right_total.Merge(right);

  EXPECT_EQ(left.count(), right_total.count());
  EXPECT_EQ(left.sum(), right_total.sum());
  EXPECT_EQ(left.min(), right_total.min());
  EXPECT_EQ(left.max(), right_total.max());
  EXPECT_EQ(left.buckets(), right_total.buckets());
  for (double p : {50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(left.Percentile(p), right_total.Percentile(p)) << p;
  }

  obs::Histogram ba = b;  // commutativity
  ba.Merge(a);
  obs::Histogram ab = a;
  ab.Merge(b);
  EXPECT_EQ(ab.buckets(), ba.buckets());
  EXPECT_EQ(ab.sum(), ba.sum());
}

TEST(HistogramTest, JsonHasPercentileKeys) {
  obs::Histogram h;
  h.Record(42);
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"max\":42"), std::string::npos);
}

// --- Tracer ---------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan span(&tracer, obs::SpanKind::kDecode);
  }
  tracer.Record(obs::SpanKind::kResolve, 1, 2, 3);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Drain().empty());
}

TEST(TracerTest, RecordsAndDrainsInStartOrder) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  tracer.Record(obs::SpanKind::kDecode, /*start_ns=*/200, /*duration_ns=*/5,
                /*detail=*/1);
  tracer.Record(obs::SpanKind::kLink, /*start_ns=*/100, /*duration_ns=*/7,
                /*detail=*/2);
  EXPECT_EQ(tracer.recorded(), 2u);
  const std::vector<obs::SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, obs::SpanKind::kLink);
  EXPECT_EQ(spans[0].start_ns, 100u);
  EXPECT_EQ(spans[1].kind, obs::SpanKind::kDecode);
  // Drain clears the buffered window but not the cumulative counters.
  EXPECT_TRUE(tracer.Drain().empty());
  EXPECT_EQ(tracer.recorded(), 2u);
  tracer.Clear();
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(TracerTest, OverwritesOldestAndCountsDrops) {
  obs::Tracer tracer(/*ring_capacity=*/4);
  tracer.SetEnabled(true);
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.Record(obs::SpanKind::kExecute, i, 1, i);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::vector<obs::SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 4u);  // the newest window survives
  EXPECT_EQ(spans.front().start_ns, 6u);
  EXPECT_EQ(spans.back().start_ns, 9u);
}

TEST(TracerTest, ScopedSpanMeasuresDuration) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  {
    obs::ScopedSpan span(&tracer, obs::SpanKind::kPageRead, 77);
  }
  const std::vector<obs::SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, obs::SpanKind::kPageRead);
  EXPECT_EQ(spans[0].detail, 77u);
}

TEST(TracerTest, DrainJsonNamesTheKinds) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  tracer.Record(obs::SpanKind::kCacheLookup, 1, 2, 3);
  const std::string json = tracer.DrainJson();
  EXPECT_NE(json.find("cache_lookup"), std::string::npos) << json;
}

// --- Per-query profiles ---------------------------------------------------

// Paper §3.2.1: a retrieval whose clustering key is fully bound matches
// at most one record, so the resolver proves the choice point away — the
// profile must show zero choice points created and the elimination
// counted.
TEST(QueryProfileTest, FullyBoundKeyEliminatesChoicePoints) {
  EngineOptions options;
  options.profiling = true;
  Engine engine(options);
  ASSERT_TRUE(engine.DeclareRelation("item", 2, {0}).ok());
  std::string facts;
  for (int i = 0; i < 50; ++i) {
    facts += "item(" + std::to_string(i) + ", v" + std::to_string(i) + ").\n";
  }
  ASSERT_TRUE(engine.StoreFactsExternal(facts).ok());
  engine.ResetStats();

  auto count = engine.CountSolutions("item(7, X)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);

  const std::vector<obs::QueryProfile> profiles = engine.RecentProfiles();
  ASSERT_EQ(profiles.size(), 1u);
  const obs::QueryProfile& p = profiles[0];
  EXPECT_EQ(p.goal, "item(7, X)");
  EXPECT_EQ(p.solutions, 1u);
  EXPECT_EQ(p.choice_points_created, 0u);
  EXPECT_GE(p.choice_points_eliminated, 1u);
  EXPECT_GT(p.instructions, 0u);
}

TEST(QueryProfileTest, AblationOffCreatesChoicePoints) {
  // The contrast run: with elimination disabled the same retrieval pays
  // a choice point and proves nothing away.
  EngineOptions options;
  options.profiling = true;
  options.choice_point_elimination = false;
  Engine engine(options);
  ASSERT_TRUE(engine.DeclareRelation("item", 2, {0}).ok());
  ASSERT_TRUE(engine.StoreFactsExternal("item(1, a). item(2, b).").ok());
  engine.ResetStats();

  auto count = engine.CountSolutions("item(1, X)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);

  const std::vector<obs::QueryProfile> profiles = engine.RecentProfiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_GE(profiles[0].choice_points_created, 1u);
  EXPECT_EQ(profiles[0].choice_points_eliminated, 0u);
}

TEST(QueryProfileTest, StoredRuleQueryReportsCostSplit) {
  EngineOptions options;
  options.profiling = true;
  Engine engine(options);
  ASSERT_TRUE(engine.StoreFactsExternal("edge(a, b). edge(b, c).").ok());
  ASSERT_TRUE(
      engine.StoreRulesExternal("hop(X, Y) :- edge(X, Z), edge(Z, Y).").ok());
  engine.ResetStats();

  auto count = engine.CountSolutions("hop(a, Y)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);

  const std::vector<obs::QueryProfile> profiles = engine.RecentProfiles();
  ASSERT_EQ(profiles.size(), 1u);
  const obs::QueryProfile& p = profiles[0];
  // The stored rule was decoded and linked for this query; both costs
  // are sub-components of the resolver trap, which is under the total.
  EXPECT_GT(p.clauses_decoded, 0u);
  EXPECT_GT(p.resolve_ns, 0u);
  EXPECT_LE(p.decode_ns + p.link_ns, p.resolve_ns);
  EXPECT_LE(p.resolve_ns, p.total_ns);
  EXPECT_EQ(p.execute_ns, p.total_ns - p.resolve_ns);
  // The opcode-class counters cover every instruction executed.
  uint64_t op_sum = 0;
  for (uint64_t n : p.op_class) op_sum += n;
  EXPECT_EQ(op_sum, p.instructions);
  EXPECT_GT(p.heap_high_water, 0u);
  // Its JSON carries the split.
  const std::string json = p.ToJson();
  EXPECT_NE(json.find("\"decode_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"choice_points_eliminated\""), std::string::npos);
}

TEST(QueryProfileTest, ProfilingOffCollectsNothing) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1). p(2).").ok());
  auto count = engine.CountSolutions("p(X)");
  ASSERT_TRUE(count.ok());
  EXPECT_TRUE(engine.RecentProfiles().empty());
  EXPECT_EQ(engine.tracer()->recorded(), 0u);
  // Latency is always-on, profiling or not.
  EXPECT_EQ(engine.QueryLatencyHistogram().count(), 1u);
}

TEST(QueryProfileTest, SlowQueryLogWritesJsonLine) {
  EngineOptions options;
  options.slow_query_ns = 1;  // every query is "slow"
  Engine engine(options);
  std::ostringstream log;
  engine.set_metrics_log(&log);
  ASSERT_TRUE(engine.Consult("p(1).").ok());
  auto count = engine.CountSolutions("p(X)");
  ASSERT_TRUE(count.ok());
  const std::string line = log.str();
  EXPECT_NE(line.find("SLOW_QUERY "), std::string::npos) << line;
  EXPECT_NE(line.find("\"goal\":\"p(X)\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"total_ns\""), std::string::npos);
}

// --- Metrics export -------------------------------------------------------

TEST(MetricsExportTest, DocumentCarriesEverySection) {
  EngineOptions options;
  options.profiling = true;
  Engine engine(options);
  ASSERT_TRUE(engine.DeclareRelation("item", 2, {0}).ok());
  ASSERT_TRUE(engine.StoreFactsExternal("item(1, a). item(2, b).").ok());
  ASSERT_TRUE(engine.StoreRulesExternal("r(X) :- item(X, _).").ok());
  ASSERT_TRUE(engine.CountSolutions("item(1, X)").ok());
  ASSERT_TRUE(engine.CountSolutions("r(X)").ok());

  const std::string json = engine.ExportMetricsJson();
  for (const char* key :
       {"\"profiling\":true", "\"query_latency_ns\"", "\"totals\"",
        "\"choice_points_created\"", "\"choice_points_eliminated\"",
        "\"decode_ns\"", "\"link_ns\"", "\"resolve_ns\"",
        "\"op_class_totals\"", "\"per_procedure\"", "\"spans\"",
        "\"memory\"", "\"warm_segment_bytes\"",
        "\"code_cache_shard_max_bytes\"", "\"recent_queries\"",
        "\"execute_ns\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing";
  }
  // The stored rule shows up in the per-procedure decode/link costs.
  EXPECT_NE(json.find("\"proc\":\"r/1\""), std::string::npos) << json;
}

TEST(MetricsExportTest, ShardOccupancyIsOrdered) {
  EngineOptions options;
  Engine engine(options);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine
                    .StoreRulesExternal("q" + std::to_string(i) +
                                        "(X) :- X = " + std::to_string(i) +
                                        ".")
                    .ok());
    ASSERT_TRUE(engine.CountSolutions("q" + std::to_string(i) + "(X)").ok());
  }
  const EngineStats stats = engine.Stats();
  EXPECT_GE(stats.memory.code_cache_shard_max_bytes,
            stats.memory.code_cache_shard_min_bytes);
  EXPECT_GT(stats.memory.code_cache_shard_max_bytes, 0u);
  // All shard occupancies sum to at most the global gauge; the max shard
  // cannot exceed the total resident bytes.
  EXPECT_LE(stats.memory.code_cache_shard_max_bytes,
            stats.memory.code_cache_resident_bytes);
}

TEST(MetricsExportTest, ResetStatsClearsObservability) {
  EngineOptions options;
  options.profiling = true;
  Engine engine(options);
  ASSERT_TRUE(engine.Consult("p(1).").ok());
  ASSERT_TRUE(engine.CountSolutions("p(X)").ok());
  ASSERT_GE(engine.QueryLatencyHistogram().count(), 1u);
  ASSERT_FALSE(engine.RecentProfiles().empty());
  engine.ResetStats();
  EXPECT_EQ(engine.QueryLatencyHistogram().count(), 0u);
  EXPECT_TRUE(engine.RecentProfiles().empty());
  EXPECT_EQ(engine.tracer()->recorded(), 0u);
}

TEST(MetricsExportTest, ProfileToggleAtRuntime) {
  Engine engine;
  ASSERT_TRUE(engine.Consult("p(1).").ok());
  EXPECT_FALSE(engine.profiling());
  engine.SetProfiling(true);
  EXPECT_TRUE(engine.profiling());
  ASSERT_TRUE(engine.CountSolutions("p(X)").ok());
  EXPECT_EQ(engine.RecentProfiles().size(), 1u);
  engine.SetProfiling(false);
  ASSERT_TRUE(engine.CountSolutions("p(X)").ok());
  EXPECT_EQ(engine.RecentProfiles().size(), 1u);  // unchanged
}

}  // namespace
}  // namespace educe
