// Cross-session persistence: the database image (superblock, external
// dictionary, catalog) and the relocatable warm code segment. The safety
// net gets the heavier testing — stale versions, foreign epochs,
// truncated and bit-flipped bytes must degrade to a cold start, never
// misbehave or crash.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "edb/warm_segment.h"
#include "educe/engine.h"

namespace educe {
namespace {

std::string TempDbPath(const std::string& name) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("educe_warm_" + name + ".edb"))
          .string();
  std::remove(path.c_str());
  return path;
}

/// A small DAG whose transitive closure takes several recursion levels.
/// Must stay acyclic: reach/2 below is plain transitive closure and
/// diverges on cycles.
void BuildDatabase(Engine* engine) {
  std::string facts;
  for (int i = 0; i < 24; ++i) {
    facts += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             ").\n";
    if (i % 4 == 0 && i + 7 <= 24) {
      facts += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 7) +
               ").\n";
    }
  }
  ASSERT_TRUE(engine->StoreFactsExternal(facts).ok());
  ASSERT_TRUE(engine
                  ->StoreRulesExternal(
                      "reach(X, Y) :- edge(X, Y).\n"
                      "reach(X, Z) :- edge(X, Y), reach(Y, Z).")
                  .ok());
}

uint64_t CountReach(Engine* engine, const std::string& from) {
  auto count = engine->CountSolutions("reach(" + from + ", X)");
  EXPECT_TRUE(count.ok()) << count.status();
  return count.ok() ? *count : 0;
}

TEST(WarmSegmentTest, CrossSessionRoundTrip) {
  const std::string path = TempDbPath("round_trip");
  uint64_t cold_solutions = 0;
  {
    EngineOptions options;
    options.db_path = path;
    Engine engine(options);
    EXPECT_FALSE(engine.attached());
    BuildDatabase(&engine);
    cold_solutions = CountReach(&engine, "n0");
    EXPECT_GT(cold_solutions, 0u);
    EXPECT_GT(engine.Stats().loader.clauses_decoded, 0u);
    ASSERT_TRUE(engine.Close().ok());
  }
  {
    EngineOptions options;
    options.db_path = path;
    Engine engine(options);
    EXPECT_TRUE(engine.attached());
    EXPECT_TRUE(engine.open_status().ok()) << engine.open_status();
    const EngineStats before = engine.Stats();
    EXPECT_GT(before.code_cache.warm_seeded, 0u);
    EXPECT_EQ(before.code_cache.warm_rejected, 0u);
    // The warm session answers identically without decoding any clause.
    EXPECT_EQ(CountReach(&engine, "n0"), cold_solutions);
    EXPECT_EQ(engine.Stats().loader.clauses_decoded, 0u);
  }
  std::remove(path.c_str());
}

TEST(WarmSegmentTest, CheckpointWritesImageMidSession) {
  const std::string path = TempDbPath("checkpoint");
  const std::string copy = TempDbPath("checkpoint_copy");
  uint64_t checkpoint_solutions = 0;
  {
    EngineOptions options;
    options.db_path = path;
    Engine engine(options);
    BuildDatabase(&engine);
    checkpoint_solutions = CountReach(&engine, "n0");
    ASSERT_TRUE(engine.Checkpoint().ok());

    // Model a crash between checkpoints: preserve the image as of the
    // checkpoint, then keep mutating the live engine. The copy must
    // reopen to exactly the checkpointed state.
    std::filesystem::copy_file(path, copy);
    ASSERT_TRUE(engine.StoreFactsExternal("edge(n99, n0).").ok());
    EXPECT_GT(CountReach(&engine, "n99"), 0u);
    ASSERT_TRUE(engine.Close().ok());
  }
  {
    EngineOptions options;
    options.db_path = copy;
    Engine engine(options);
    EXPECT_TRUE(engine.attached());
    EXPECT_TRUE(engine.open_status().ok()) << engine.open_status();
    // State as of the checkpoint: the warm segment seeds, reach/n0
    // agrees, and the post-checkpoint fact never existed here.
    EXPECT_GT(engine.Stats().code_cache.warm_seeded, 0u);
    EXPECT_EQ(CountReach(&engine, "n0"), checkpoint_solutions);
    EXPECT_EQ(CountReach(&engine, "n99"), 0u);
    // The checkpointed engine stays usable for further checkpoints.
    ASSERT_TRUE(engine.Checkpoint().ok());
    EXPECT_EQ(CountReach(&engine, "n0"), checkpoint_solutions);
  }
  std::remove(path.c_str());
  std::remove(copy.c_str());
}

TEST(WarmSegmentTest, CheckpointRefusedWhileSessionsActive) {
  const std::string path = TempDbPath("checkpoint_sessions");
  EngineOptions options;
  options.db_path = path;
  Engine engine(options);
  BuildDatabase(&engine);

  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();
  // A checkpoint under live worker sessions could capture a half-applied
  // overlay; the engine refuses rather than write a torn image.
  EXPECT_TRUE(engine.Checkpoint().IsFailedPrecondition());
  session->reset();
  EXPECT_TRUE(engine.Checkpoint().ok());

  // A memory-only engine has nothing to checkpoint to.
  Engine transient;
  EXPECT_TRUE(transient.Checkpoint().IsFailedPrecondition());
  std::remove(path.c_str());
}

TEST(WarmSegmentTest, CatalogPersistsWithoutWarmSegment) {
  const std::string path = TempDbPath("catalog_only");
  uint64_t cold_solutions = 0;
  {
    EngineOptions options;
    options.db_path = path;
    Engine engine(options);
    BuildDatabase(&engine);
    cold_solutions = CountReach(&engine, "n3");
    ASSERT_TRUE(engine.Close().ok());
  }
  {
    EngineOptions options;
    options.db_path = path;
    options.load_warm_segment = false;
    Engine engine(options);
    EXPECT_TRUE(engine.attached());
    EXPECT_EQ(engine.Stats().code_cache.warm_seeded, 0u);
    // Facts and rules come back from the restored catalog; the loader
    // decodes from stored relative code as in any cold session.
    EXPECT_EQ(CountReach(&engine, "n3"), cold_solutions);
    EXPECT_GT(engine.Stats().loader.clauses_decoded, 0u);
  }
  std::remove(path.c_str());
}

TEST(WarmSegmentTest, StaleVersionsAreRejectedEntryWise) {
  Engine engine;
  BuildDatabase(&engine);
  EXPECT_GT(CountReach(&engine, "n0"), 0u);

  auto* external = engine.clause_store()->external_dictionary();
  auto warm = edb::SerializeWarmSegment(
      *engine.loader()->cache(), *engine.dictionary(), external,
      *engine.program()->builtins(), external->epoch());
  ASSERT_TRUE(warm.ok()) << warm.status();

  // Mutate reach/2 (bumps its version); edge/2 stays untouched.
  ASSERT_TRUE(engine.StoreRulesExternal("reach(X, X) :- edge(X, _).").ok());

  engine.loader()->cache()->Clear();
  auto report = edb::LoadWarmSegment(
      warm.value(), engine.loader()->cache(), engine.dictionary(), external,
      *engine.program()->builtins(), engine.clause_store(), external->epoch());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report.value().rejected, 0u);  // reach/2 entries are stale

  // The engine serves the *new* program, never the stale cached code.
  auto self = engine.Succeeds("reach(n2, n2)");
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(*self);
}

TEST(WarmSegmentTest, ForeignEpochRejectsWholesale) {
  Engine a;
  BuildDatabase(&a);
  EXPECT_GT(CountReach(&a, "n0"), 0u);
  auto* a_external = a.clause_store()->external_dictionary();
  auto warm = edb::SerializeWarmSegment(
      *a.loader()->cache(), *a.dictionary(), a_external,
      *a.program()->builtins(), a_external->epoch());
  ASSERT_TRUE(warm.ok());

  Engine b;
  BuildDatabase(&b);  // same schema, different database identity
  auto* b_external = b.clause_store()->external_dictionary();
  ASSERT_NE(a_external->epoch(), b_external->epoch());
  auto report = edb::LoadWarmSegment(
      warm.value(), b.loader()->cache(), b.dictionary(), b_external,
      *b.program()->builtins(), b.clause_store(), b_external->epoch());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().seeded, 0u);
  EXPECT_GT(report.value().rejected, 0u);
  EXPECT_EQ(b.Stats().code_cache.warm_rejected, report.value().rejected);
}

TEST(WarmSegmentTest, StaleSegmentAcrossSessions) {
  const std::string path = TempDbPath("stale_sessions");
  {
    EngineOptions options;
    options.db_path = path;
    Engine engine(options);
    BuildDatabase(&engine);
    EXPECT_GT(CountReach(&engine, "n0"), 0u);
    ASSERT_TRUE(engine.Close().ok());  // writes the warm segment
  }
  {
    // Session 2 mutates the rules but keeps the *old* warm segment (the
    // not-saving path carries the previous root over).
    EngineOptions options;
    options.db_path = path;
    options.load_warm_segment = false;
    options.save_warm_segment = false;
    Engine engine(options);
    ASSERT_TRUE(engine.attached());
    ASSERT_TRUE(engine.StoreRulesExternal("reach(X, X) :- edge(X, _).").ok());
    ASSERT_TRUE(engine.Close().ok());
  }
  {
    // Session 3 sees a warm segment written before the mutation: every
    // reach/2 entry is version-stale and must be rejected, and queries
    // reflect the new program.
    EngineOptions options;
    options.db_path = path;
    Engine engine(options);
    ASSERT_TRUE(engine.attached());
    EXPECT_GT(engine.Stats().code_cache.warm_rejected, 0u);
    auto self = engine.Succeeds("reach(n2, n2)");
    ASSERT_TRUE(self.ok());
    EXPECT_TRUE(*self);
  }
  std::remove(path.c_str());
}

TEST(WarmSegmentTest, TruncatedWarmBytesNeverCrash) {
  Engine engine;
  BuildDatabase(&engine);
  EXPECT_GT(CountReach(&engine, "n0"), 0u);
  auto* external = engine.clause_store()->external_dictionary();
  auto warm = edb::SerializeWarmSegment(
      *engine.loader()->cache(), *engine.dictionary(), external,
      *engine.program()->builtins(), external->epoch());
  ASSERT_TRUE(warm.ok());
  const std::string& bytes = warm.value();
  ASSERT_GT(bytes.size(), 20u);

  for (size_t len = 0; len < bytes.size(); ++len) {
    engine.loader()->cache()->Clear();
    auto report = edb::LoadWarmSegment(
        std::string_view(bytes).substr(0, len), engine.loader()->cache(),
        engine.dictionary(), external, *engine.program()->builtins(),
        engine.clause_store(), external->epoch());
    // Every strict prefix must fail parsing — cleanly.
    EXPECT_FALSE(report.ok()) << "prefix length " << len;
  }
  // And the intact bytes still load.
  engine.loader()->cache()->Clear();
  auto intact = edb::LoadWarmSegment(
      bytes, engine.loader()->cache(), engine.dictionary(), external,
      *engine.program()->builtins(), engine.clause_store(), external->epoch());
  ASSERT_TRUE(intact.ok()) << intact.status();
  EXPECT_GT(intact.value().seeded, 0u);
}

TEST(WarmSegmentTest, FlippedWarmBytesNeverCrash) {
  Engine engine;
  BuildDatabase(&engine);
  EXPECT_GT(CountReach(&engine, "n0"), 0u);
  auto* external = engine.clause_store()->external_dictionary();
  auto warm = edb::SerializeWarmSegment(
      *engine.loader()->cache(), *engine.dictionary(), external,
      *engine.program()->builtins(), external->epoch());
  ASSERT_TRUE(warm.ok());

  for (size_t pos = 0; pos < warm.value().size(); pos += 3) {
    std::string mutated = warm.value();
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    engine.loader()->cache()->Clear();
    // Any outcome but a crash/UB is acceptable: clean error, rejected
    // entries, or (for don't-care bytes) a normal load.
    (void)edb::LoadWarmSegment(mutated, engine.loader()->cache(),
                               engine.dictionary(), external,
                               *engine.program()->builtins(),
                               engine.clause_store(), external->epoch());
  }
}

TEST(WarmSegmentTest, TruncatedImageFallsBackToFresh) {
  const std::string path = TempDbPath("truncated_image");
  {
    EngineOptions options;
    options.db_path = path;
    Engine engine(options);
    BuildDatabase(&engine);
    ASSERT_TRUE(engine.Close().ok());
  }
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  {
    EngineOptions options;
    options.db_path = path;
    Engine engine(options);
    EXPECT_FALSE(engine.attached());
    EXPECT_FALSE(engine.open_status().ok());
    // The session starts fresh and fully usable.
    ASSERT_TRUE(engine.Consult("p(1).").ok());
    auto ok = engine.Succeeds("p(1)");
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(*ok);
  }
  std::remove(path.c_str());
}

TEST(WarmSegmentTest, ResetBufferCacheCanDropCodeCache) {
  Engine engine;
  BuildDatabase(&engine);
  EXPECT_GT(CountReach(&engine, "n0"), 0u);
  EXPECT_GT(engine.Stats().code_cache.entries, 0u);

  ASSERT_TRUE(engine.ResetBufferCache(/*drop_code_cache=*/false).ok());
  EXPECT_GT(engine.Stats().code_cache.entries, 0u);  // code survives

  ASSERT_TRUE(engine.ResetBufferCache(/*drop_code_cache=*/true).ok());
  EXPECT_EQ(engine.Stats().code_cache.entries, 0u);
  EXPECT_EQ(engine.Stats().memory.code_cache_resident_bytes, 0u);

  // Fully cold, everything still answers.
  EXPECT_GT(CountReach(&engine, "n0"), 0u);
}

TEST(WarmSegmentTest, MemoryReportIsCoherent) {
  Engine engine;
  BuildDatabase(&engine);
  EXPECT_GT(CountReach(&engine, "n0"), 0u);
  const EngineStats s = engine.Stats();
  EXPECT_GT(s.memory.buffer_resident_bytes, 0u);
  EXPECT_LE(s.memory.buffer_resident_bytes, s.memory.buffer_capacity_bytes);
  EXPECT_GT(s.memory.code_cache_resident_bytes, 0u);
  EXPECT_LE(s.memory.code_cache_resident_bytes,
            s.memory.code_cache_capacity_bytes);
  EXPECT_GT(s.memory.paged_file_bytes, 0u);
  EXPECT_EQ(s.memory.code_cache_resident_bytes, s.code_cache.bytes_resident);
}

TEST(WarmSegmentTest, PerCallTiersSurviveSessions) {
  const std::string path = TempDbPath("per_call");
  uint64_t cold_solutions = 0;
  EngineOptions options;
  options.db_path = path;
  options.loader_cache = false;  // per-call (pattern-filtered) loading
  {
    Engine engine(options);
    BuildDatabase(&engine);
    cold_solutions = CountReach(&engine, "n0");
    EXPECT_GT(engine.Stats().code_cache.pattern_misses, 0u);
    ASSERT_TRUE(engine.Close().ok());
  }
  {
    Engine engine(options);
    ASSERT_TRUE(engine.attached());
    EXPECT_GT(engine.Stats().code_cache.warm_seeded, 0u);
    EXPECT_EQ(CountReach(&engine, "n0"), cold_solutions);
    // Pattern and selection fingerprints are stable across sessions, so
    // the warm-seeded per-call entries are hit without any decoding.
    EXPECT_EQ(engine.Stats().loader.clauses_decoded, 0u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace educe
