#include "reader/parser.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "reader/tokenizer.h"
#include "reader/writer.h"

namespace educe::reader {
namespace {

using term::Ast;

class ReaderTest : public ::testing::Test {
 protected:
  dict::Dictionary dict_;

  term::AstPtr Parse(std::string_view text) {
    auto result = ParseTerm(&dict_, text);
    EXPECT_TRUE(result.ok()) << result.status() << " for: " << text;
    return result.ok() ? result->term : nullptr;
  }

  std::string Name(const Ast& t) {
    return std::string(dict_.NameOf(t.functor));
  }
};

TEST_F(ReaderTest, Atoms) {
  auto t = Parse("foo");
  ASSERT_TRUE(t && t->IsAtom());
  EXPECT_EQ(Name(*t), "foo");

  t = Parse("'hello world'");
  ASSERT_TRUE(t && t->IsAtom());
  EXPECT_EQ(Name(*t), "hello world");

  t = Parse("[]");
  ASSERT_TRUE(t && t->IsAtom());
  EXPECT_EQ(Name(*t), "[]");
}

TEST_F(ReaderTest, Numbers) {
  auto t = Parse("42");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->kind, Ast::Kind::kInt);
  EXPECT_EQ(t->int_value, 42);

  t = Parse("-7");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->int_value, -7);

  t = Parse("3.5");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->kind, Ast::Kind::kFloat);
  EXPECT_DOUBLE_EQ(t->float_value, 3.5);

  t = Parse("1.0e3");
  ASSERT_TRUE(t);
  EXPECT_DOUBLE_EQ(t->float_value, 1000.0);

  t = Parse("0'a");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->int_value, 'a');

  t = Parse("0x2A");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->int_value, 42);
}

TEST_F(ReaderTest, Variables) {
  auto result = ParseTerm(&dict_, "f(X, Y, X, _)");
  ASSERT_TRUE(result.ok());
  const Ast& t = *result->term;
  ASSERT_EQ(t.args.size(), 4u);
  EXPECT_EQ(t.args[0]->var_index, t.args[2]->var_index);
  EXPECT_NE(t.args[0]->var_index, t.args[1]->var_index);
  EXPECT_NE(t.args[3]->var_index, t.args[0]->var_index);  // _ is fresh
  EXPECT_EQ(result->num_vars, 3u);
  EXPECT_EQ(result->var_names.size(), 2u);  // X and Y only
}

TEST_F(ReaderTest, Structures) {
  auto t = Parse("point(1, 2.5, name)");
  ASSERT_TRUE(t && t->IsStruct());
  EXPECT_EQ(Name(*t), "point");
  EXPECT_EQ(t->arity(), 3u);
}

TEST_F(ReaderTest, Lists) {
  auto t = Parse("[1, 2, 3]");
  ASSERT_TRUE(t && t->IsStruct());
  EXPECT_EQ(Name(*t), ".");
  EXPECT_EQ(t->args[0]->int_value, 1);
  // Tail: [2,3]
  const Ast& tail = *t->args[1];
  EXPECT_EQ(tail.args[0]->int_value, 2);

  t = Parse("[H|T]");
  ASSERT_TRUE(t && t->IsStruct());
  EXPECT_TRUE(t->args[0]->IsVar());
  EXPECT_TRUE(t->args[1]->IsVar());
}

TEST_F(ReaderTest, OperatorPrecedence) {
  // 1 + 2 * 3 parses as +(1, *(2, 3)).
  auto t = Parse("1 + 2 * 3");
  ASSERT_TRUE(t && t->IsStruct());
  EXPECT_EQ(Name(*t), "+");
  EXPECT_EQ(t->args[0]->int_value, 1);
  EXPECT_EQ(Name(*t->args[1]), "*");

  // Left associativity: 1 - 2 - 3 = -(-(1,2),3).
  t = Parse("1 - 2 - 3");
  ASSERT_TRUE(t);
  EXPECT_EQ(Name(*t), "-");
  EXPECT_EQ(Name(*t->args[0]), "-");
  EXPECT_EQ(t->args[1]->int_value, 3);

  // xfy: a , b , c = ','(a, ','(b, c)).
  t = Parse("(a , b , c)");
  ASSERT_TRUE(t);
  EXPECT_EQ(Name(*t), ",");
  EXPECT_EQ(Name(*t->args[1]), ",");
}

TEST_F(ReaderTest, ClauseSyntax) {
  auto t = Parse("p(X) :- q(X), r(X)");
  ASSERT_TRUE(t && t->IsStruct());
  EXPECT_EQ(Name(*t), ":-");
  EXPECT_EQ(Name(*t->args[0]), "p");
  EXPECT_EQ(Name(*t->args[1]), ",");
}

TEST_F(ReaderTest, IfThenElseAndNegation) {
  auto t = Parse("( a -> b ; c )");
  ASSERT_TRUE(t);
  EXPECT_EQ(Name(*t), ";");
  EXPECT_EQ(Name(*t->args[0]), "->");

  t = Parse("\\+ foo(X)");
  ASSERT_TRUE(t);
  EXPECT_EQ(Name(*t), "\\+");
}

TEST_F(ReaderTest, NegativeNumberVsSubtraction) {
  auto t = Parse("f(-1)");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->args[0]->kind, Ast::Kind::kInt);
  EXPECT_EQ(t->args[0]->int_value, -1);

  t = Parse("3-1");
  ASSERT_TRUE(t);
  EXPECT_EQ(Name(*t), "-");
}

TEST_F(ReaderTest, Comments) {
  auto program = ParseProgram(&dict_,
                              "% line comment\n"
                              "a. /* block\ncomment */ b.\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->size(), 2u);
}

TEST_F(ReaderTest, StringsAreCodeLists) {
  auto t = Parse("\"ab\"");
  ASSERT_TRUE(t && t->IsStruct());
  EXPECT_EQ(t->args[0]->int_value, 'a');
}

TEST_F(ReaderTest, MultipleClauses) {
  auto program = ParseProgram(&dict_, "p(1). p(2). q(X) :- p(X).");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->size(), 3u);
}

TEST_F(ReaderTest, CurlyBraces) {
  auto t = Parse("{a, b}");
  ASSERT_TRUE(t && t->IsStruct());
  EXPECT_EQ(Name(*t), "{}");
  EXPECT_EQ(t->arity(), 1u);
}

TEST_F(ReaderTest, SyntaxErrors) {
  EXPECT_FALSE(ParseTerm(&dict_, "f(").ok());
  EXPECT_FALSE(ParseTerm(&dict_, "f(a,)").ok());
  EXPECT_FALSE(ParseTerm(&dict_, "[a, b").ok());
  EXPECT_FALSE(ParseTerm(&dict_, "'unterminated").ok());
  EXPECT_FALSE(ParseTerm(&dict_, "/* unterminated").ok());
}

TEST_F(ReaderTest, EndTokenRequiresLayout) {
  // =.. is a symbolic atom, not an end token.
  auto t = Parse("X =.. L");
  ASSERT_TRUE(t);
  EXPECT_EQ(Name(*t), "=..");
}


TEST_F(ReaderTest, PrefixDeclarationOperators) {
  auto t = Parse(":- dynamic foo/2");
  ASSERT_TRUE(t && t->IsStruct());
  EXPECT_EQ(Name(*t), ":-");
  ASSERT_EQ(t->args.size(), 1u);
  EXPECT_EQ(Name(*t->args[0]), "dynamic");
}

TEST_F(ReaderTest, OperatorsAsArguments) {
  // An operator atom in an argument position parses as a plain atom when
  // nothing follows it.
  auto t = Parse("f(a, -, b)");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->arity(), 3u);
  EXPECT_EQ(Name(*t->args[1]), "-");
}

TEST_F(ReaderTest, DeeplyNestedTermsParse) {
  std::string text = "x";
  for (int i = 0; i < 200; ++i) text = "w(" + text + ")";
  auto t = Parse(text);
  ASSERT_TRUE(t);
  int depth = 0;
  const term::Ast* node = t.get();
  while (node->IsStruct()) {
    node = node->args[0].get();
    ++depth;
  }
  EXPECT_EQ(depth, 200);
}

TEST_F(ReaderTest, QuotedAtomsWithEscapes) {
  auto t = Parse("'line\\nbreak'");
  ASSERT_TRUE(t && t->IsAtom());
  EXPECT_EQ(Name(*t), "line\nbreak");
  t = Parse("'it''s'");
  ASSERT_TRUE(t && t->IsAtom());
  EXPECT_EQ(Name(*t), "it's");
}

TEST_F(ReaderTest, CommaPrecedenceInsideArguments) {
  // Inside f(...), an unparenthesized ',' separates arguments; a
  // parenthesized one is the conjunction operator.
  auto t = Parse("f((a, b), c)");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->arity(), 2u);
  EXPECT_EQ(Name(*t->args[0]), ",");
}

// --- writer round-trips ----------------------------------------------------

class WriterRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WriterRoundTripTest, ParseWriteParse) {
  dict::Dictionary dict;
  auto first = ParseTerm(&dict, GetParam());
  ASSERT_TRUE(first.ok()) << first.status();
  const std::string text = WriteTerm(dict, *first->term);
  auto second = ParseTerm(&dict, text);
  ASSERT_TRUE(second.ok()) << second.status() << " from rendered: " << text;
  EXPECT_TRUE(term::AstEquals(*first->term, *second->term))
      << "round-trip changed term: " << text;
}

INSTANTIATE_TEST_SUITE_P(
    Terms, WriterRoundTripTest,
    ::testing::Values(
        "foo", "'quoted atom'", "42", "-42", "3.25", "[1,2,3]", "[H|T]",
        "f(a, B, g(h(1)))", "p(X) :- q(X), r(X, [a|Y])",
        "a + b * c - d", "'ODD name'(1)", "[]", "[[]]", "f([a,b],[c|[d]])",
        "\\+ p(X)", "(a ; b)", "(a -> b ; c)", "X = [1, 'two', 3.0]",
        "f(-1, - 1)", "'hello\\nworld'", "{x, y}",
        "schedule(u6, garching, 480, 510, [stop(a,1),stop(b,2)])"));

// Property: writer output always re-parses for random nested terms.
TEST(WriterPropertyTest, RandomTermsRoundTrip) {
  base::Rng rng(7);
  dict::Dictionary dict;
  // Random term builder.
  std::function<term::AstPtr(int)> build = [&](int depth) -> term::AstPtr {
    const uint64_t pick = rng.Below(depth > 3 ? 3 : 5);
    switch (pick) {
      case 0:
        return term::MakeInt(static_cast<int64_t>(rng.Below(1000)) - 500);
      case 1:
        return term::MakeAtom(
            *dict.Intern("atom" + std::to_string(rng.Below(10)), 0));
      case 2:
        return term::MakeVar(static_cast<uint32_t>(rng.Below(5)),
                             "V" + std::to_string(rng.Below(5)));
      case 3: {
        const uint32_t arity = 1 + static_cast<uint32_t>(rng.Below(3));
        std::vector<term::AstPtr> args;
        for (uint32_t i = 0; i < arity; ++i) args.push_back(build(depth + 1));
        return term::MakeStruct(
            *dict.Intern("f" + std::to_string(rng.Below(4)), arity),
            std::move(args));
      }
      default: {
        std::vector<term::AstPtr> elements;
        const uint32_t n = static_cast<uint32_t>(rng.Below(4));
        for (uint32_t i = 0; i < n; ++i) elements.push_back(build(depth + 1));
        return term::MakeList(*dict.Intern(".", 2), elements,
                              term::MakeAtom(*dict.Intern("[]", 0)));
      }
    }
  };
  for (int trial = 0; trial < 200; ++trial) {
    term::AstPtr t = build(0);
    const std::string text = WriteTerm(dict, *t);
    auto parsed = ParseTerm(&dict, text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " for " << text;
    // Var indices may differ (parser renumbers); compare shape by
    // rendering both.
    EXPECT_EQ(WriteTerm(dict, *parsed->term), text);
  }
}

}  // namespace
}  // namespace educe::reader
