#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>
#include <cstring>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include "base/rng.h"
#include "base/stopwatch.h"
#include "storage/io_util.h"
#include "storage/bang_file.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/paged_file.h"
#include "storage/slotted_page.h"

namespace educe::storage {
namespace {

TEST(PagedFileTest, AllocateReadWrite) {
  PagedFile file;
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  EXPECT_NE(a, b);

  std::vector<char> buf(file.page_size(), 'x');
  ASSERT_TRUE(file.Write(a, buf.data()).ok());
  std::vector<char> out(file.page_size());
  ASSERT_TRUE(file.Read(a, out.data()).ok());
  EXPECT_EQ(out[0], 'x');

  // Fresh pages read back zeroed.
  ASSERT_TRUE(file.Read(b, out.data()).ok());
  EXPECT_EQ(out[100], 0);

  EXPECT_EQ(file.stats().pages_read, 2u);
  EXPECT_EQ(file.stats().pages_written, 1u);
  EXPECT_FALSE(file.Read(99, out.data()).ok());
}

TEST(BufferPoolTest, HitsAndMisses) {
  PagedFile file;
  BufferPool pool(&file, 4);
  auto page = pool.New();
  ASSERT_TRUE(page.ok());
  const PageId id = page->page_id();
  page->data()[0] = 'z';
  page->MarkDirty();
  page->Release();

  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[0], 'z');
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBack) {
  PagedFile file;
  BufferPool pool(&file, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    auto page = pool.New();
    ASSERT_TRUE(page.ok());
    page->data()[0] = static_cast<char>('a' + i);
    page->MarkDirty();
    ids.push_back(page->page_id());
  }
  // Only 2 frames: early pages were evicted and written back.
  EXPECT_GE(pool.stats().evictions, 2u);
  EXPECT_GE(pool.stats().writebacks, 2u);
  auto first = pool.Fetch(ids[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->data()[0], 'a');
}

TEST(BufferPoolTest, PinnedPagesCannotAllBeEvicted) {
  PagedFile file;
  BufferPool pool(&file, 2);
  auto p1 = pool.New();
  auto p2 = pool.New();
  ASSERT_TRUE(p1.ok() && p2.ok());
  auto p3 = pool.New();  // both frames pinned
  EXPECT_FALSE(p3.ok());
}

TEST(BufferPoolTest, ResizeGrowTakesEffectImmediately) {
  PagedFile file;
  BufferPool pool(&file, 2);
  ASSERT_TRUE(pool.Resize(4).ok());
  EXPECT_EQ(pool.num_frames(), 4u);
  EXPECT_EQ(pool.capacity_bytes(), 4u * file.page_size());

  // All four frames can be pinned at once now.
  std::vector<PageHandle> pinned;
  for (int i = 0; i < 4; ++i) {
    auto page = pool.New();
    ASSERT_TRUE(page.ok());
    pinned.push_back(std::move(*page));
  }
  EXPECT_FALSE(pool.New().ok());  // the fifth still fails
}

TEST(BufferPoolTest, ResizeShrinkEvictsColdestAndPreservesData) {
  PagedFile file;
  BufferPool pool(&file, 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    auto page = pool.New();
    ASSERT_TRUE(page.ok());
    page->data()[0] = static_cast<char>('a' + i);
    page->MarkDirty();
    ids.push_back(page->page_id());
  }
  ASSERT_TRUE(pool.Resize(2).ok());
  EXPECT_EQ(pool.num_frames(), 2u);
  EXPECT_GE(pool.stats().evictions, 6u);  // dirty pages written back

  // Every page survives the shrink via writeback.
  for (int i = 0; i < 8; ++i) {
    auto page = pool.Fetch(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->data()[0], static_cast<char>('a' + i));
  }
}

TEST(BufferPoolTest, ResizeShrinkStopsAtPinnedTailFrames) {
  PagedFile file;
  BufferPool pool(&file, 4);
  std::vector<PageHandle> pinned;
  for (int i = 0; i < 4; ++i) {
    auto page = pool.New();
    ASSERT_TRUE(page.ok());
    page->data()[0] = static_cast<char>('p' + i);
    pinned.push_back(std::move(*page));
  }
  // Every frame pinned: the shrink must not invalidate a live handle, so
  // it returns OK having kept all four frames.
  ASSERT_TRUE(pool.Resize(2).ok());
  EXPECT_EQ(pool.num_frames(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pinned[i].data()[0], static_cast<char>('p' + i));
  }

  // Once the pins drop, a later resize completes.
  for (auto& page : pinned) page.Release();
  ASSERT_TRUE(pool.Resize(2).ok());
  EXPECT_EQ(pool.num_frames(), 2u);
}

TEST(BufferPoolTest, ResizeClampsToTwoFrames) {
  PagedFile file;
  BufferPool pool(&file, 4);
  ASSERT_TRUE(pool.Resize(0).ok());
  EXPECT_EQ(pool.num_frames(), 2u);
}

TEST(BufferPoolTest, InvalidateDropsCleanState) {
  PagedFile file;
  BufferPool pool(&file, 4);
  auto page = pool.New();
  ASSERT_TRUE(page.ok());
  const PageId id = page->page_id();
  page->data()[7] = 'q';
  page->MarkDirty();
  page->Release();

  ASSERT_TRUE(pool.Invalidate().ok());
  pool.ResetStats();
  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[7], 'q');  // survived via writeback
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(SlottedPageTest, InsertGetDelete) {
  std::vector<char> data(4096, 0);
  SlottedPage page(data.data(), 4096, 8);
  page.Format();
  auto a = page.Insert("hello");
  auto b = page.Insert("world!");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*page.Get(*a), "hello");
  EXPECT_EQ(*page.Get(*b), "world!");
  EXPECT_TRUE(page.Delete(*a));
  EXPECT_FALSE(page.Get(*a).has_value());
  EXPECT_FALSE(page.Delete(*a));
  EXPECT_EQ(page.LiveCount(), 1u);
}

TEST(SlottedPageTest, FillsUntilFull) {
  std::vector<char> data(512, 0);
  SlottedPage page(data.data(), 512, 8);
  page.Format();
  int inserted = 0;
  while (page.Insert(std::string(20, 'x'))) ++inserted;
  EXPECT_GT(inserted, 10);
  EXPECT_LT(inserted, 30);
}

TEST(SlottedPageTest, CompactReclaimsDeletedSpace) {
  std::vector<char> data(512, 0);
  SlottedPage page(data.data(), 512, 8);
  page.Format();
  std::vector<uint16_t> slots;
  while (true) {
    auto slot = page.Insert(std::string(20, 'x'));
    if (!slot) break;
    slots.push_back(*slot);
  }
  // Delete every other record, compact, and insert again.
  for (size_t i = 0; i < slots.size(); i += 2) page.Delete(slots[i]);
  const std::string survivor(*page.Get(slots[1]));
  page.Compact();
  EXPECT_EQ(*page.Get(slots[1]), survivor);
  EXPECT_TRUE(page.Insert(std::string(20, 'y')).has_value());
}

TEST(HeapFileTest, AppendReadDelete) {
  PagedFile file;
  BufferPool pool(&file, 8);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());

  auto r1 = heap->Append("first");
  auto r2 = heap->Append("second");
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(heap->Read(*r1).value(), "first");
  EXPECT_EQ(heap->Read(*r2).value(), "second");

  ASSERT_TRUE(heap->Delete(*r1).ok());
  EXPECT_FALSE(heap->Read(*r1).ok());
}

TEST(HeapFileTest, SpansPagesAndScans) {
  PagedFile file;
  BufferPool pool(&file, 8);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  const std::string record(500, 'r');
  const int n = 50;  // ~25 KB: multiple 4K pages
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(heap->Append(record + std::to_string(i)).ok());
  }
  auto cursor = heap->Scan();
  RecordId rid;
  std::string bytes;
  int count = 0;
  std::set<std::string> seen;
  while (cursor.Next(&rid, &bytes)) {
    ++count;
    seen.insert(bytes);
  }
  ASSERT_TRUE(cursor.status().ok());
  EXPECT_EQ(count, n);
  EXPECT_EQ(seen.size(), static_cast<size_t>(n));
}

TEST(HeapFileTest, ReopenFindsTail) {
  PagedFile file;
  BufferPool pool(&file, 8);
  PageId first;
  {
    auto heap = HeapFile::Create(&pool);
    ASSERT_TRUE(heap.ok());
    first = heap->first_page();
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(heap->Append(std::string(400, 'a')).ok());
    }
  }
  auto reopened = HeapFile::Open(&pool, first);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened->Append("tail-record").ok());
  auto cursor = reopened->Scan();
  RecordId rid;
  std::string bytes;
  int count = 0;
  while (cursor.Next(&rid, &bytes)) ++count;
  EXPECT_EQ(count, 41);
}

TEST(HeapFileTest, OversizeRecordRejected) {
  PagedFile file;
  BufferPool pool(&file, 8);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  EXPECT_FALSE(heap->Append(std::string(5000, 'x')).ok());
}

// --- BANG file -------------------------------------------------------------

TEST(BangFileTest, ExactMatchRetrieval) {
  PagedFile file;
  BufferPool pool(&file, 32);
  auto bang = BangFile::Create(&pool, 2);
  ASSERT_TRUE(bang.ok());

  ASSERT_TRUE(bang->Insert({10, 20}, "alpha").ok());
  ASSERT_TRUE(bang->Insert({10, 21}, "beta").ok());
  ASSERT_TRUE(bang->Insert({11, 20}, "gamma").ok());

  auto cursor = bang->OpenScan({10, 20});
  BangFile::Record record;
  ASSERT_TRUE(cursor.Next(&record));
  EXPECT_EQ(record.payload, "alpha");
  EXPECT_FALSE(cursor.Next(&record));
}

TEST(BangFileTest, PartialMatchRetrieval) {
  PagedFile file;
  BufferPool pool(&file, 32);
  auto bang = BangFile::Create(&pool, 3);
  ASSERT_TRUE(bang.ok());
  for (uint64_t a = 0; a < 5; ++a) {
    for (uint64_t b = 0; b < 5; ++b) {
      ASSERT_TRUE(bang->Insert({a, b, a + b},
                               std::to_string(a) + ":" + std::to_string(b))
                      .ok());
    }
  }
  // Bind only attribute 0.
  auto cursor = bang->OpenScan({3, kBangWildcard, kBangWildcard});
  BangFile::Record record;
  int count = 0;
  while (cursor.Next(&record)) {
    EXPECT_EQ(record.keys[0], 3u);
    ++count;
  }
  EXPECT_EQ(count, 5);
}

TEST(BangFileTest, FullScanSeesEverything) {
  PagedFile file;
  BufferPool pool(&file, 64);
  auto bang = BangFile::Create(&pool, 1);
  ASSERT_TRUE(bang.ok());
  const int n = 2000;  // forces many splits
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        bang->Insert({static_cast<uint64_t>(i)}, std::to_string(i)).ok());
  }
  EXPECT_EQ(bang->record_count(), static_cast<uint64_t>(n));
  EXPECT_GT(bang->stats().splits, 0u);

  auto cursor = bang->OpenScan({kBangWildcard});
  BangFile::Record record;
  std::set<std::string> seen;
  while (cursor.Next(&record)) seen.insert(record.payload);
  ASSERT_TRUE(cursor.status().ok());
  EXPECT_EQ(seen.size(), static_cast<size_t>(n));
}

TEST(BangFileTest, BoundScanNarrowsBuckets) {
  PagedFile file;
  BufferPool pool(&file, 64);
  auto bang = BangFile::Create(&pool, 2);
  ASSERT_TRUE(bang.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(bang->Insert({static_cast<uint64_t>(i % 50),
                              static_cast<uint64_t>(i)},
                             "p")
                    .ok());
  }
  bang->ResetStats();
  auto bound = bang->OpenScan({7, kBangWildcard});
  BangFile::Record record;
  while (bound.Next(&record)) {
  }
  const uint64_t bound_buckets = bang->stats().buckets_scanned;

  bang->ResetStats();
  auto open = bang->OpenScan({kBangWildcard, kBangWildcard});
  while (open.Next(&record)) {
  }
  const uint64_t open_buckets = bang->stats().buckets_scanned;
  EXPECT_LT(bound_buckets * 2, open_buckets)
      << "binding an attribute must prune at least half the buckets";
}

TEST(BangFileTest, DeleteRemovesRecord) {
  PagedFile file;
  BufferPool pool(&file, 32);
  auto bang = BangFile::Create(&pool, 1);
  ASSERT_TRUE(bang.ok());
  ASSERT_TRUE(bang->Insert({5}, "gone").ok());
  ASSERT_TRUE(bang->Insert({6}, "stays").ok());

  auto cursor = bang->OpenScan({5});
  BangFile::Record record;
  ASSERT_TRUE(cursor.Next(&record));
  ASSERT_TRUE(bang->Delete(record.rid).ok());
  EXPECT_EQ(bang->record_count(), 1u);

  auto again = bang->OpenScan({5});
  EXPECT_FALSE(again.Next(&record));
  auto other = bang->OpenScan({6});
  EXPECT_TRUE(other.Next(&record));
}

TEST(BangFileTest, DuplicateKeysAllowed) {
  PagedFile file;
  BufferPool pool(&file, 32);
  auto bang = BangFile::Create(&pool, 1);
  ASSERT_TRUE(bang.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(bang->Insert({42}, "dup" + std::to_string(i)).ok());
  }
  auto cursor = bang->OpenScan({42});
  BangFile::Record record;
  int count = 0;
  while (cursor.Next(&record)) ++count;
  EXPECT_EQ(count, 10);
}

TEST(BangFileTest, WildcardKeyRejectedOnInsert) {
  PagedFile file;
  BufferPool pool(&file, 32);
  auto bang = BangFile::Create(&pool, 1);
  ASSERT_TRUE(bang.ok());
  EXPECT_FALSE(bang->Insert({kBangWildcard}, "bad").ok());
}

// Property: BANG partial-match results always equal a model filter.
class BangPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BangPropertyTest, MatchesModel) {
  base::Rng rng(GetParam());
  PagedFile file;
  BufferPool pool(&file, 64);
  auto bang = BangFile::Create(&pool, 3);
  ASSERT_TRUE(bang.ok());

  std::vector<std::pair<std::vector<uint64_t>, std::string>> model;
  for (int i = 0; i < 1500; ++i) {
    std::vector<uint64_t> keys = {rng.Below(8), rng.Below(8), rng.Below(8)};
    std::string payload = "r" + std::to_string(i);
    ASSERT_TRUE(bang->Insert(keys, payload).ok());
    model.emplace_back(keys, payload);
  }

  for (int probe = 0; probe < 30; ++probe) {
    std::vector<uint64_t> pattern(3);
    for (auto& k : pattern) {
      k = rng.Below(3) == 0 ? kBangWildcard : rng.Below(8);
    }
    std::multiset<std::string> expected;
    for (const auto& [keys, payload] : model) {
      bool match = true;
      for (int i = 0; i < 3; ++i) {
        if (pattern[i] != kBangWildcard && pattern[i] != keys[i]) {
          match = false;
        }
      }
      if (match) expected.insert(payload);
    }
    std::multiset<std::string> actual;
    auto cursor = bang->OpenScan(pattern);
    BangFile::Record record;
    while (cursor.Next(&record)) actual.insert(record.payload);
    ASSERT_TRUE(cursor.status().ok());
    EXPECT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BangPropertyTest,
                         ::testing::Values(11, 22, 33, 44));


// Property: under a random pin/write/evict workload, page contents always
// match a shadow model — the pool never loses or mixes up page bytes.
class BufferPoolPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferPoolPropertyTest, ContentsMatchModel) {
  base::Rng rng(GetParam());
  PagedFile file;
  BufferPool pool(&file, 8);  // small pool: constant eviction

  std::vector<std::vector<char>> model;
  for (int i = 0; i < 40; ++i) {
    auto page = pool.New();
    ASSERT_TRUE(page.ok());
    model.emplace_back(file.page_size(), 0);
  }
  // Release all pins before the churn (New() returns pinned handles).
  // (handles already destroyed at loop scope end)

  for (int step = 0; step < 2000; ++step) {
    const PageId id = static_cast<PageId>(rng.Below(model.size()));
    auto page = pool.Fetch(id);
    ASSERT_TRUE(page.ok());
    // Verify current contents against the model.
    ASSERT_EQ(std::memcmp(page->data(), model[id].data(), 64), 0)
        << "page " << id << " diverged at step " << step;
    if (rng.Below(2) == 0) {
      const char v = static_cast<char>(rng.Below(256));
      const size_t at = rng.Below(64);
      page->data()[at] = v;
      model[id][at] = v;
      page->MarkDirty();
    }
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  // After flushing, the backing file agrees byte for byte.
  std::vector<char> buf(file.page_size());
  for (PageId id = 0; id < model.size(); ++id) {
    ASSERT_TRUE(file.Read(id, buf.data()).ok());
    EXPECT_EQ(std::memcmp(buf.data(), model[id].data(), file.page_size()), 0)
        << "page " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferPoolPropertyTest,
                         ::testing::Values(3, 33, 333));

// --- io_util: full-transfer I/O under signals and partial syscalls ------

// Writer trickles the payload through a pipe in small chunks: every
// read() returns short, and ReadFull must keep looping until the full
// count (or EOF) arrives.
TEST(IoUtilTest, ReadFullAssemblesPartialPipeReads) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  constexpr size_t kBytes = 64 << 10;
  std::vector<char> sent(kBytes);
  for (size_t i = 0; i < kBytes; ++i) sent[i] = static_cast<char>(i * 31 + 7);
  std::thread writer([&] {
    size_t off = 0;
    while (off < kBytes) {
      const size_t chunk = std::min<size_t>(513, kBytes - off);
      ASSERT_TRUE(WriteFull(fds[1], sent.data() + off, chunk).ok());
      off += chunk;
    }
    close(fds[1]);
  });
  std::vector<char> got(kBytes + 100);
  auto n = ReadFull(fds[0], got.data(), got.size());
  writer.join();
  ASSERT_TRUE(n.ok()) << n.status();
  // EOF after exactly kBytes: the short return is explicit, not silent.
  EXPECT_EQ(*n, kBytes);
  EXPECT_EQ(std::memcmp(got.data(), sent.data(), kBytes), 0);
  close(fds[0]);
}

// A signal with a no-SA_RESTART handler makes blocking pipe I/O fail
// with EINTR (and can leave writes short). Both helpers must retry and
// still move every byte. The old fstream-based image paths treated this
// as a stream failure at best and silent truncation at worst.
TEST(IoUtilTest, FullTransferSurvivesSignalInterruption) {
  struct sigaction sa = {};
  struct sigaction old_sa;
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately not SA_RESTART
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old_sa), 0);

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  constexpr size_t kBytes = 1 << 20;  // far beyond the pipe buffer
  std::vector<char> sent(kBytes);
  for (size_t i = 0; i < kBytes; ++i) sent[i] = static_cast<char>(i * 131 + 3);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    // Blocks repeatedly on the full pipe; signals interrupt it mid-write.
    EXPECT_TRUE(WriteFull(fds[1], sent.data(), kBytes).ok());
    close(fds[1]);
    done.store(true);
  });
  // Pepper the blocked writer with signals while draining slowly.
  std::vector<char> got;
  got.reserve(kBytes);
  std::vector<char> buf(4096);
  pthread_t writer_handle = writer.native_handle();
  int signals_sent = 0;
  while (true) {
    if (!done.load() && signals_sent < 64) {
      pthread_kill(writer_handle, SIGUSR1);
      ++signals_sent;
    }
    auto n = ReadFull(fds[0], buf.data(), buf.size());
    ASSERT_TRUE(n.ok()) << n.status();
    if (*n == 0) break;  // EOF: writer finished and closed
    got.insert(got.end(), buf.data(), buf.data() + *n);
  }
  writer.join();
  ASSERT_EQ(got.size(), kBytes);
  EXPECT_EQ(std::memcmp(got.data(), sent.data(), kBytes), 0);
  close(fds[0]);
  sigaction(SIGUSR1, &old_sa, nullptr);
}

TEST(IoUtilTest, ReadFullReportsRealErrors) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);
  close(fds[1]);
  char buf[8];
  auto n = ReadFull(fds[0], buf, sizeof(buf));  // closed fd -> EBADF
  EXPECT_FALSE(n.ok());
  auto wrote = WriteFull(fds[1], buf, sizeof(buf));
  EXPECT_FALSE(wrote.ok());
}

TEST(PagedFileTest, SaveLoadImageRoundTripsThroughPosixPath) {
  const std::string path = ::testing::TempDir() + "/io_util_image.educe";
  PagedFile file;
  const PageId id = file.Allocate();
  std::vector<char> page(file.page_size(), 0);
  std::snprintf(page.data(), page.size(), "hardened image page");
  ASSERT_TRUE(file.Write(id, page.data()).ok());
  ASSERT_TRUE(file.SaveImage(path).ok());

  PagedFile reloaded;
  ASSERT_TRUE(reloaded.LoadImage(path).ok());
  ASSERT_EQ(reloaded.page_count(), file.page_count());
  std::vector<char> back(reloaded.page_size());
  ASSERT_TRUE(reloaded.Read(id, back.data()).ok());
  EXPECT_STREQ(back.data(), "hardened image page");

  // Truncation is an explicit Corruption, not a short-read success.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);
  PagedFile truncated;
  base::Status st = truncated.LoadImage(path);
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

TEST(PagedFileTest, SimulatedLatencyIsCharged) {
  PagedFile::Options options;
  options.simulated_latency_ns = 200000;  // 0.2 ms
  PagedFile file(options);
  const PageId id = file.Allocate();
  std::vector<char> buf(file.page_size());
  base::Stopwatch watch;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(file.Read(id, buf.data()).ok());
  }
  EXPECT_GE(watch.ElapsedSeconds(), 20 * 0.0002 * 0.8);
}

}  // namespace
}  // namespace educe::storage
