// Unit tests for the WAM clause compiler and the linker: golden
// disassembly of representative clauses (paper §2.1's compilation
// examples among them), index-key extraction, aux-predicate extraction,
// and linker control-code layout.

#include "wam/compiler.h"

#include <gtest/gtest.h>

#include <string>

#include "reader/parser.h"
#include "wam/builtins.h"
#include "wam/program.h"

namespace educe::wam {
namespace {

class CompilerTest : public ::testing::Test {
 protected:
  CompilerTest() : program_(&dict_) {
    EXPECT_TRUE(InstallStandardLibrary(&program_).ok());
  }

  std::vector<CompiledClause> Compile(std::string_view text) {
    auto read = reader::ParseTerm(&dict_, text);
    EXPECT_TRUE(read.ok()) << read.status();
    auto compiled = program_.compiler()->Compile(read->term);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
    return compiled.ok() ? std::move(compiled).value()
                         : std::vector<CompiledClause>{};
  }

  std::string Disasm(std::string_view text) {
    auto compiled = Compile(text);
    return compiled.empty() ? ""
                            : Disassemble(dict_, compiled[0].code.code);
  }

  dict::Dictionary dict_;
  Program program_;
};

TEST_F(CompilerTest, PaperExampleFact) {
  // Paper §2.1: p(a, b) compiles to two get_constant instructions.
  EXPECT_EQ(Disasm("p(a, b)"),
            "0:\tget_constant a/0, A0\n"
            "1:\tget_constant b/0, A1\n"
            "2:\tproceed\n");
}

TEST_F(CompilerTest, FactWithVariables) {
  // Shared variable: first occurrence moves, second unifies.
  const std::string text = Disasm("q(X, X)");
  EXPECT_EQ(text,
            "0:\tget_variable X2, A0\n"
            "1:\tget_value X2, A1\n"
            "2:\tproceed\n");
}

TEST_F(CompilerTest, StructuredHead) {
  const std::string text = Disasm("p(f(a, Y), Y)");
  EXPECT_NE(text.find("get_structure f/2, A0"), std::string::npos);
  EXPECT_NE(text.find("unify_constant a/0"), std::string::npos);
  // Y occurs in two head slots: unify_variable then get_value.
  EXPECT_NE(text.find("unify_variable"), std::string::npos);
  EXPECT_NE(text.find("get_value"), std::string::npos);
}

TEST_F(CompilerTest, NestedStructuresFlattenBreadthFirst) {
  const std::string text = Disasm("p(f(g(h)))");
  // f first, then the deferred g via a temp register.
  const size_t f_at = text.find("get_structure f/1, A0");
  const size_t g_at = text.find("get_structure g/1");
  const size_t h_at = text.find("unify_constant h/0");
  EXPECT_NE(f_at, std::string::npos);
  EXPECT_NE(g_at, std::string::npos);
  EXPECT_NE(h_at, std::string::npos);
  EXPECT_LT(f_at, g_at);
  EXPECT_LT(g_at, h_at);
}

TEST_F(CompilerTest, ListsUseListInstructions) {
  const std::string text = Disasm("p([H|T])");
  EXPECT_NE(text.find("get_list A0"), std::string::npos);
  EXPECT_EQ(text.find("get_structure"), std::string::npos);
}

TEST_F(CompilerTest, RuleGetsEnvironmentAndLastCall) {
  const std::string text = Disasm("p(X) :- q(X), r(X).");
  EXPECT_NE(text.find("allocate"), std::string::npos);
  EXPECT_NE(text.find("call q/1"), std::string::npos);
  EXPECT_NE(text.find("deallocate"), std::string::npos);
  // Last call optimization: r is executed, not called.
  EXPECT_NE(text.find("execute r/1"), std::string::npos);
  EXPECT_EQ(text.find("call r/1"), std::string::npos);
}

TEST_F(CompilerTest, ChainRuleNeedsNoEnvironment) {
  const std::string text = Disasm("p(X) :- q(X).");
  EXPECT_EQ(text.find("allocate"), std::string::npos);
  EXPECT_NE(text.find("execute q/1"), std::string::npos);
}

TEST_F(CompilerTest, FactNeedsNoEnvironment) {
  auto compiled = Compile("p(a, b, c)");
  ASSERT_EQ(compiled.size(), 1u);
  EXPECT_FALSE(compiled[0].code.needs_environment);
  EXPECT_EQ(compiled[0].code.num_permanent, 0u);
}

TEST_F(CompilerTest, CutGetsBarrierSlot) {
  const std::string text = Disasm("p(X) :- q(X), !, r(X).");
  EXPECT_NE(text.find("get_level"), std::string::npos);
  EXPECT_NE(text.find("cut Y"), std::string::npos);
}

TEST_F(CompilerTest, BuiltinsCompileInline) {
  const std::string text = Disasm("p(X, Y) :- Y is X + 1.");
  EXPECT_NE(text.find("builtin"), std::string::npos);
  EXPECT_EQ(text.find("call is/2"), std::string::npos);
}

TEST_F(CompilerTest, DisjunctionExtractsAuxPredicate) {
  auto compiled = Compile("p(X) :- ( q(X) ; r(X) ).");
  // Main clause + two aux clauses.
  ASSERT_EQ(compiled.size(), 3u);
  EXPECT_EQ(dict_.NameOf(compiled[0].functor), "p");
  EXPECT_EQ(dict_.NameOf(compiled[1].functor),
            dict_.NameOf(compiled[2].functor));
  EXPECT_EQ(dict_.NameOf(compiled[1].functor).substr(0, 4), "$aux");
  // The aux predicate receives the shared variable.
  EXPECT_EQ(compiled[1].arity, 1u);
}

TEST_F(CompilerTest, IfThenElseAuxHasCut) {
  auto compiled = Compile("p(X, R) :- ( X > 0 -> R = pos ; R = neg ).");
  ASSERT_EQ(compiled.size(), 3u);
  const std::string then_branch =
      Disassemble(dict_, compiled[1].code.code);
  EXPECT_NE(then_branch.find("cut"), std::string::npos);
}

TEST_F(CompilerTest, NegationAux) {
  auto compiled = Compile("p(X) :- \\+ q(X).");
  ASSERT_EQ(compiled.size(), 3u);
  const std::string first = Disassemble(dict_, compiled[1].code.code);
  EXPECT_NE(first.find("cut"), std::string::npos);
  // Second aux clause: plain success.
  EXPECT_EQ(compiled[2].code.code.back().op, Opcode::kProceed);
}

TEST_F(CompilerTest, IndexKeys) {
  EXPECT_EQ(Compile("k(foo).")[0].code.key.type, IndexKey::Type::kAtom);
  EXPECT_EQ(Compile("k(42).")[0].code.key.type, IndexKey::Type::kInt);
  EXPECT_EQ(Compile("k(4.5).")[0].code.key.type, IndexKey::Type::kFloat);
  EXPECT_EQ(Compile("k([a]).")[0].code.key.type, IndexKey::Type::kList);
  EXPECT_EQ(Compile("k(f(1)).")[0].code.key.type, IndexKey::Type::kStruct);
  EXPECT_EQ(Compile("k(X) :- t(X).")[0].code.key.type, IndexKey::Type::kVar);
  EXPECT_EQ(Compile("k.")[0].code.key.type, IndexKey::Type::kVar);
}

TEST_F(CompilerTest, LinkerSingleClauseHasNoControl) {
  ASSERT_TRUE(program_.AddClause(
                  reader::ParseTerm(&dict_, "solo(1).")->term).ok());
  auto functor = dict_.Lookup("solo", 1);
  ASSERT_TRUE(functor.has_value());
  auto linked = program_.Linked(*functor);
  ASSERT_TRUE(linked.ok());
  const std::string text =
      Disassemble(dict_, (*linked)->code, &(*linked)->tables);
  EXPECT_EQ(text.find("try"), std::string::npos);
  EXPECT_EQ(text.find("switch"), std::string::npos);
}

TEST_F(CompilerTest, LinkerEmitsSwitchForMultiClause) {
  for (const char* c : {"multi(a, 1).", "multi(b, 2).", "multi(c, 3)."}) {
    ASSERT_TRUE(
        program_.AddClause(reader::ParseTerm(&dict_, c)->term).ok());
  }
  auto functor = dict_.Lookup("multi", 2);
  ASSERT_TRUE(functor.has_value());
  auto linked = program_.Linked(*functor);
  ASSERT_TRUE(linked.ok());
  const std::string text =
      Disassemble(dict_, (*linked)->code, &(*linked)->tables);
  EXPECT_NE(text.find("switch_on_term"), std::string::npos);
  EXPECT_NE(text.find("switch_on_constant"), std::string::npos);
  // Three clauses, three distinct keys: each bucket is deterministic, but
  // the var entry chains all three.
  EXPECT_NE(text.find("try"), std::string::npos);
  EXPECT_EQ((*linked)->clause_offsets.size(), 3u);
}

TEST_F(CompilerTest, LinkerWithoutIndexingUsesChain) {
  program_.SetIndexingEnabled(false);
  for (const char* c : {"chain(a).", "chain(b)."}) {
    ASSERT_TRUE(
        program_.AddClause(reader::ParseTerm(&dict_, c)->term).ok());
  }
  auto functor = dict_.Lookup("chain", 1);
  auto linked = program_.Linked(*functor);
  ASSERT_TRUE(linked.ok());
  const std::string text =
      Disassemble(dict_, (*linked)->code, &(*linked)->tables);
  EXPECT_EQ(text.find("switch"), std::string::npos);
  EXPECT_NE(text.find("try"), std::string::npos);
  EXPECT_NE(text.find("trust"), std::string::npos);
  program_.SetIndexingEnabled(true);
}

TEST_F(CompilerTest, EmptyProcedureLinksToFail) {
  auto linked = LinkProcedure(0, 1, {}, true);
  ASSERT_EQ(linked->code.size(), 1u);
  EXPECT_EQ(linked->code[0].op, Opcode::kFail);
}

TEST_F(CompilerTest, CompilerStatsAdvance) {
  program_.compiler()->ResetStats();
  Compile("s(X) :- ( a(X) ; b(X) ).");
  const CompilerStats& stats = program_.compiler()->stats();
  EXPECT_EQ(stats.clauses_compiled, 3u);
  EXPECT_EQ(stats.aux_predicates, 1u);
  EXPECT_GT(stats.instructions_emitted, 5u);
}

TEST_F(CompilerTest, DeepNestingStaysWithinRegisterBudget) {
  // A pathologically wide clause must produce a clean error, not UB.
  std::string wide = "w(";
  for (int i = 0; i < 60; ++i) {
    if (i) wide += ", ";
    wide += "f(g(h(a" + std::to_string(i) + ")))";
  }
  wide += ")";
  auto read = reader::ParseTerm(&dict_, wide);
  ASSERT_TRUE(read.ok());
  auto compiled = program_.compiler()->Compile(read->term);
  // Either compiles (within budget) or reports exhaustion — never crashes.
  if (!compiled.ok()) {
    EXPECT_EQ(compiled.status().code(),
              base::StatusCode::kResourceExhausted);
  }
}

}  // namespace
}  // namespace educe::wam
