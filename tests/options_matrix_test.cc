// Consistency matrix: every combination of the engine's evaluation knobs
// (first-argument indexing, choice-point elimination, loader cache,
// pre-unification, rule storage mode) must compute the same answers on a
// fixed mixed workload — the options trade speed, never semantics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "educe/engine.h"

namespace educe {
namespace {

struct Knobs {
  bool indexing;
  bool cpe;       // choice-point elimination
  bool cache;     // loader cache
  bool preunify;
  RuleStorage storage;
  bool rules_external;
};

std::string KnobsName(const ::testing::TestParamInfo<Knobs>& info) {
  const Knobs& k = info.param;
  std::string name;
  name += k.indexing ? "idx_" : "noidx_";
  name += k.cpe ? "cpe_" : "nocpe_";
  name += k.cache ? "cache_" : "nocache_";
  name += k.preunify ? "pre_" : "nopre_";
  name += !k.rules_external ? "mem"
          : (k.storage == RuleStorage::kCompiled ? "edbc" : "edbs");
  return name;
}

constexpr const char* kFacts = R"(
  flight(muc, fra, lh100, 60).
  flight(muc, txl, lh200, 70).
  flight(fra, cdg, af300, 80).
  flight(fra, lhr, ba400, 90).
  flight(txl, lhr, ba500, 95).
  flight(cdg, jfk, af600, 480).
  flight(lhr, jfk, ba700, 460).
  hub(fra). hub(lhr).
)";

constexpr const char* kRules = R"(
  leg(A, B, F, D) :- flight(A, B, F, D).
  itinerary(A, B, [F], D) :- leg(A, B, F, D).
  itinerary(A, B, [F|Fs], D) :-
      leg(A, M, F, D1),
      itinerary(M, B, Fs, D2),
      D is D1 + D2.
  via_hub(A, B) :- leg(A, H, _, _), hub(H), leg(H, B, _, _).
  short_hop(A, B) :- leg(A, B, _, D), D < 75.
  options(A, B, N) :- findall(Fs, itinerary(A, B, Fs, _), L), length(L, N).
)";

std::vector<std::string> RunWorkload(const Knobs& k) {
  EngineOptions options;
  options.first_arg_indexing = k.indexing;
  options.choice_point_elimination = k.cpe;
  options.loader_cache = k.cache;
  options.preunify = k.preunify;
  options.rule_storage = k.storage;
  Engine engine(options);
  EXPECT_TRUE(engine.StoreFactsExternal(kFacts).ok());
  if (k.rules_external) {
    EXPECT_TRUE(engine.StoreRulesExternal(kRules).ok());
  } else {
    EXPECT_TRUE(engine.Consult(kRules).ok());
  }

  std::vector<std::string> out;
  const char* queries[] = {
      "itinerary(muc, jfk, Fs, D)",
      "via_hub(muc, B)",
      "short_hop(A, B)",
      "options(muc, jfk, N)",
      "itinerary(muc, X, _, D), D < 100",
      "\\+ short_hop(cdg, jfk)",
  };
  for (const char* query : queries) {
    auto q = engine.Query(query);
    EXPECT_TRUE(q.ok()) << q.status() << " for " << query;
    if (!q.ok()) continue;
    int count = 0;
    while (count < 200) {
      auto more = (*q)->Next();
      EXPECT_TRUE(more.ok()) << more.status() << " for " << query;
      if (!more.ok() || !*more) break;
      ++count;
      std::string solution = query;
      for (const auto& [name, value] : (*q)->All()) {
        solution += " " + name + "=" + value;
      }
      out.push_back(std::move(solution));
    }
  }
  return out;
}

class OptionsMatrixTest : public ::testing::TestWithParam<Knobs> {};

TEST_P(OptionsMatrixTest, AgreesWithReferenceConfiguration) {
  static const std::vector<std::string>* reference = [] {
    // Reference: everything on, rules in memory.
    return new std::vector<std::string>(RunWorkload(
        Knobs{true, true, true, true, RuleStorage::kCompiled, false}));
  }();
  ASSERT_FALSE(reference->empty());
  EXPECT_EQ(RunWorkload(GetParam()), *reference);
}

std::vector<Knobs> AllKnobs() {
  std::vector<Knobs> out;
  for (bool indexing : {true, false}) {
    for (bool cpe : {true, false}) {
      for (bool cache : {true, false}) {
        for (bool preunify : {true, false}) {
          // Rule placements: memory, EDB-compiled, EDB-source.
          out.push_back(
              {indexing, cpe, cache, preunify, RuleStorage::kCompiled, false});
          out.push_back(
              {indexing, cpe, cache, preunify, RuleStorage::kCompiled, true});
          // Source mode ignores cache/preunify; keep a representative pair
          // to bound the matrix size.
          if (cache && preunify) {
            out.push_back(
                {indexing, cpe, cache, preunify, RuleStorage::kSource, true});
          }
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, OptionsMatrixTest,
                         ::testing::ValuesIn(AllKnobs()), KnobsName);

}  // namespace
}  // namespace educe
