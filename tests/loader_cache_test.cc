// The EDB code-cache subsystem (DESIGN.md §8): LRU bounds, version
// invalidation pushed from ClauseStore mutations, the pattern tier that
// makes per-call (pre-unified) loads hit in recursive rules, and
// GC-safety of cached code. The engine-level tests double as the
// acceptance check that per-call loads decode ≥5× fewer clauses with the
// pattern tier than without, at identical solutions.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "edb/code_cache.h"
#include "edb/clause_store.h"
#include "educe/engine.h"
#include "wam/code.h"

namespace educe {
namespace {

using edb::CodeCache;

// --- CodeCache unit tests --------------------------------------------------

std::shared_ptr<const wam::LinkedCode> FakeCode(dict::SymbolId functor,
                                                dict::SymbolId operand) {
  auto code = std::make_shared<wam::LinkedCode>();
  code->functor = functor;
  code->arity = 1;
  code->code.push_back(
      wam::Instruction::Make(wam::Opcode::kGetConstant, 0, 0, operand));
  code->code.push_back(wam::Instruction::Make(wam::Opcode::kProceed));
  return code;
}

CodeCache::Key ProcKey(uint64_t hash) {
  return CodeCache::Key{hash, 0, CodeCache::Tier::kProcedure};
}

TEST(CodeCacheTest, LookupHitRefreshesAndMissCounts) {
  CodeCache cache;
  cache.Insert({ProcKey(1)}, /*version=*/7, FakeCode(10, 11));
  EXPECT_EQ(cache.Lookup(ProcKey(1), 7).get(),
            cache.Lookup(ProcKey(1), 7).get());
  EXPECT_EQ(cache.Lookup(ProcKey(2), 7), nullptr);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GT(cache.stats().bytes_resident, 0u);
}

TEST(CodeCacheTest, VersionMismatchEvictsAtLookup) {
  CodeCache cache;
  cache.Insert({ProcKey(1)}, /*version=*/1, FakeCode(10, 11));
  // The pull-path safety net: a stale version must never be served.
  EXPECT_EQ(cache.Lookup(ProcKey(1), /*version=*/2), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(CodeCacheTest, LruEvictionUnderEntryBound) {
  CodeCache cache(CodeCache::Limits{/*max_entries=*/2, /*max_bytes=*/1 << 20});
  cache.Insert({ProcKey(1)}, 0, FakeCode(10, 11));
  cache.Insert({ProcKey(2)}, 0, FakeCode(20, 21));
  ASSERT_NE(cache.Lookup(ProcKey(1), 0), nullptr);  // 1 is now most recent
  cache.Insert({ProcKey(3)}, 0, FakeCode(30, 31));  // evicts 2 (LRU)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.Lookup(ProcKey(1), 0), nullptr);
  EXPECT_EQ(cache.Lookup(ProcKey(2), 0), nullptr);
  EXPECT_NE(cache.Lookup(ProcKey(3), 0), nullptr);
  EXPECT_EQ(cache.entry_count(), 2u);
}

TEST(CodeCacheTest, ByteBudgetEvictsButKeepsNewestEntry) {
  // A budget smaller than one entry still caches the latest insert.
  CodeCache cache(CodeCache::Limits{/*max_entries=*/64, /*max_bytes=*/1});
  cache.Insert({ProcKey(1)}, 0, FakeCode(10, 11));
  cache.Insert({ProcKey(2)}, 0, FakeCode(20, 21));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.Lookup(ProcKey(2), 0), nullptr);
}

TEST(CodeCacheTest, PushInvalidationDropsAllTiersOfProcedure) {
  CodeCache cache;
  const CodeCache::Key pat{1, 42, CodeCache::Tier::kPattern};
  const CodeCache::Key sel{1, 43, CodeCache::Tier::kSelection};
  cache.Insert({ProcKey(1)}, 3, FakeCode(10, 11));
  cache.Insert({sel, pat}, 3, FakeCode(10, 12));
  cache.Insert({ProcKey(9)}, 3, FakeCode(90, 91));
  cache.InvalidateProcedure(1);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.Lookup(pat, 3), nullptr);
  EXPECT_EQ(cache.Lookup(sel, 3), nullptr);
  EXPECT_NE(cache.Lookup(ProcKey(9), 3), nullptr);  // other proc untouched
}

TEST(CodeCacheTest, PurgeStaleDropsOutdatedBeforeSymbolWalk) {
  CodeCache cache;
  cache.Insert({ProcKey(1)}, /*version=*/1, FakeCode(10, 11));
  cache.Insert({ProcKey(2)}, /*version=*/5, FakeCode(20, 21));
  // Procedure 1 moved to version 2; procedure 3's hash no longer resolves.
  cache.Insert({ProcKey(3)}, /*version=*/1, FakeCode(30, 31));
  cache.PurgeStale([](uint64_t hash) -> std::optional<uint64_t> {
    if (hash == 1) return 2;             // stale (cached v1)
    if (hash == 2) return 5;             // fresh
    return std::nullopt;                 // dropped procedure
  });
  std::set<dict::SymbolId> symbols;
  cache.CollectSymbols(&symbols);
  // Only the fresh entry's symbols act as GC roots.
  EXPECT_EQ(symbols, (std::set<dict::SymbolId>{20, 21}));
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(CodeCacheTest, AliasResolvesToSameEntry) {
  CodeCache cache;
  const CodeCache::Key sel{1, 7, CodeCache::Tier::kSelection};
  const CodeCache::Key pat{1, 8, CodeCache::Tier::kPattern};
  cache.Insert({sel}, 0, FakeCode(10, 11));
  cache.Alias(sel, pat);
  EXPECT_EQ(cache.Lookup(sel, 0).get(), cache.Lookup(pat, 0).get());
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.stats().pattern_hits, 1u);
  EXPECT_EQ(cache.stats().selection_hits, 1u);
}

TEST(CodeCacheTest, ConcurrentLookupInsertInvalidateStaysCoherent) {
  // Hammer the sharded cache from several threads mixing every mutation
  // path. Lookups may hit or miss freely; the invariants are (a) a hit
  // never returns code whose recorded version mismatches, and (b) the
  // global residency gauges agree with the actual entries afterwards.
  CodeCache cache(CodeCache::Limits{64, 1u << 20});
  constexpr int kThreads = 6;
  constexpr int kOps = 2000;
  constexpr uint64_t kProcs = 40;  // spread across all 16 shards
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const uint64_t proc = (t * 31 + i) % kProcs;
        const uint64_t version = i % 3;
        switch (i % 4) {
          case 0:
            cache.Insert({ProcKey(proc)}, version,
                         FakeCode(static_cast<dict::SymbolId>(proc), 11));
            break;
          case 1:
          case 2: {
            auto code = cache.Lookup(ProcKey(proc), version);
            if (code != nullptr &&
                code->functor != static_cast<dict::SymbolId>(proc)) {
              ++failures;  // a hit must be the code inserted for this proc
            }
            break;
          }
          case 3:
            if (i % 16 == 3) {
              cache.InvalidateProcedure(proc);
            } else {
              cache.Insert({ProcKey(proc)}, version,
                           FakeCode(static_cast<dict::SymbolId>(proc), 12));
            }
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  // Quiescent coherence: gauges equal a fresh count of resident entries.
  size_t counted = 0;
  size_t bytes = 0;
  cache.ForEachEntry([&](const CodeCache::EntryView& entry) {
    ++counted;
    bytes += wam::LinkedCodeBytes(entry.code);
  });
  EXPECT_EQ(cache.entry_count(), counted);
  EXPECT_EQ(cache.bytes_resident(), bytes);
  EXPECT_LE(cache.entry_count(), 64u);
}

// --- Engine-level integration ----------------------------------------------

constexpr const char* kReachRules = R"(
  reach(X, Y) :- edge(X, Y).
  reach(X, Y) :- edge(X, Z), reach(Z, Y).
)";

std::string ChainFacts(int nodes) {
  std::string facts;
  for (int i = 0; i + 1 < nodes; ++i) {
    facts += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             ").\n";
  }
  return facts;
}

Engine MakePerCallEngine(bool pattern_cache) {
  EngineOptions options;
  options.loader_cache = false;  // force per-call (pre-unified) loads
  options.preunify = true;
  options.pattern_cache = pattern_cache;
  return Engine(options);
}

TEST(LoaderCacheTest, PatternTierServesRecursiveCalls) {
  constexpr int kNodes = 30;
  uint64_t solutions[2];
  uint64_t decoded[2];
  for (const bool cached : {false, true}) {
    Engine engine = MakePerCallEngine(cached);
    ASSERT_TRUE(engine.StoreFactsExternal(ChainFacts(kNodes)).ok());
    ASSERT_TRUE(engine.StoreRulesExternal(kReachRules).ok());
    engine.ResetStats();
    auto count = engine.CountSolutions("reach(n0, X)");
    ASSERT_TRUE(count.ok()) << count.status();
    solutions[cached] = *count;
    const EngineStats stats = engine.Stats();
    decoded[cached] = stats.loader.clauses_decoded;
    if (cached) {
      EXPECT_GT(stats.code_cache.selection_hits, 0u)
          << "recursion with varying bound args must reuse one linked entry";
      EXPECT_GT(stats.loader.pattern_cache_hits, 0u);
    }
  }
  EXPECT_EQ(solutions[0], solutions[1]);
  EXPECT_EQ(solutions[0], static_cast<uint64_t>(kNodes - 1));
  // Acceptance: ≥5× fewer decodes with the pattern tier, same answers.
  EXPECT_GE(decoded[0], 5 * decoded[1])
      << "uncached=" << decoded[0] << " cached=" << decoded[1];
}

TEST(LoaderCacheTest, ExactPatternHitSkipsTheEdbEntirely) {
  Engine engine = MakePerCallEngine(true);
  ASSERT_TRUE(engine.StoreFactsExternal("edge(a, b).").ok());
  ASSERT_TRUE(engine.StoreRulesExternal(kReachRules).ok());
  ASSERT_TRUE(engine.CountSolutions("reach(a, X)").ok());

  engine.ResetStats();
  ASSERT_TRUE(engine.CountSolutions("reach(a, X)").ok());
  const EngineStats stats = engine.Stats();
  EXPECT_GT(stats.code_cache.pattern_hits, 0u);
  EXPECT_EQ(stats.loader.clauses_decoded, 0u);
  EXPECT_EQ(stats.clause_store.rule_rows_scanned, 0u)
      << "an exact-pattern hit must not touch the rule relation";
}

TEST(LoaderCacheTest, StoreRulesInvalidatesCachedCode) {
  Engine engine;  // defaults: full-procedure cache
  ASSERT_TRUE(engine.StoreRulesExternal("p(1).").ok());
  auto one = engine.CountSolutions("p(X)");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, 1u);

  // Appending a clause must push-evict the cached linked code ...
  ASSERT_TRUE(engine.StoreRulesExternal("p(2).").ok());
  EXPECT_GE(engine.Stats().code_cache.invalidations, 1u);

  // ... so the next call decodes fresh code and sees the new clause.
  const uint64_t decoded_before = engine.Stats().loader.clauses_decoded;
  auto two = engine.CountSolutions("p(X)");
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(*two, 2u);
  EXPECT_GT(engine.Stats().loader.clauses_decoded, decoded_before);
}

TEST(LoaderCacheTest, FactMutationsViaBuiltinsLeaveRuleCodeResident) {
  Engine engine;
  ASSERT_TRUE(engine.StoreFactsExternal("f(1). f(2).").ok());
  ASSERT_TRUE(engine.StoreRulesExternal("q(X) :- f(X).").ok());
  auto base_count = engine.CountSolutions("q(X)");
  ASSERT_TRUE(base_count.ok());
  EXPECT_EQ(*base_count, 2u);

  // edb_assert / edb_retract bump the *fact* relation's version; the
  // cached rule code for q/1 does not embed facts and must stay resident.
  auto asserted = engine.Succeeds("edb_assert(f(3))");
  ASSERT_TRUE(asserted.ok());
  EXPECT_TRUE(*asserted);
  EXPECT_EQ(engine.Stats().code_cache.invalidations, 0u);

  engine.ResetStats();
  auto grown = engine.CountSolutions("q(X)");
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(*grown, 3u);  // new fact visible immediately
  EXPECT_GT(engine.Stats().loader.cache_hits, 0u);  // rule code still cached
  EXPECT_EQ(engine.Stats().loader.loads, 0u);

  auto retracted = engine.Succeeds("edb_retract(f(1))");
  ASSERT_TRUE(retracted.ok());
  EXPECT_TRUE(*retracted);
  auto shrunk = engine.CountSolutions("q(X)");
  ASSERT_TRUE(shrunk.ok());
  EXPECT_EQ(*shrunk, 2u);
}

TEST(LoaderCacheTest, EvictionUnderSmallCapacity) {
  EngineOptions options;
  options.code_cache_entries = 2;
  Engine engine(options);
  for (int i = 0; i < 4; ++i) {
    const std::string name = "ev" + std::to_string(i);
    ASSERT_TRUE(engine.StoreRulesExternal(name + "(1). " + name + "(2).").ok());
  }
  for (int i = 0; i < 4; ++i) {
    auto count = engine.CountSolutions("ev" + std::to_string(i) + "(X)");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 2u);
  }
  const EngineStats stats = engine.Stats();
  EXPECT_GE(stats.code_cache.evictions, 2u);
  EXPECT_LE(stats.code_cache.entries, 2u);

  // The evicted ev0 reloads (miss), the resident ev3 hits.
  engine.ResetStats();
  ASSERT_TRUE(engine.CountSolutions("ev3(X)").ok());
  EXPECT_GT(engine.Stats().loader.cache_hits, 0u);
  ASSERT_TRUE(engine.CountSolutions("ev0(X)").ok());
  EXPECT_GT(engine.Stats().loader.loads, 0u);
}

TEST(LoaderCacheTest, DictionaryGcRetainsCachedCodeSymbols) {
  Engine engine;
  // `edb_only_atom` is referenced by nothing but the externally stored,
  // cached rule code once the consult-time ASTs are gone.
  ASSERT_TRUE(engine.StoreRulesExternal("g(X) :- X = edb_only_atom.").ok());
  auto first = engine.First("g(X)");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)["X"], "edb_only_atom");

  auto removed = engine.CollectDictionary();
  ASSERT_TRUE(removed.ok());

  // The cached code survives GC and still names the same atom.
  auto again = engine.First("g(X)");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ((*again)["X"], "edb_only_atom");
  EXPECT_GT(engine.Stats().loader.cache_hits, 0u);
}

TEST(LoaderCacheTest, PatternCacheAgreesWithUncachedOnMixedWorkload) {
  // Mini-differential: clause sets where pre-unification actually prunes,
  // probed with repeating patterns, must answer identically with the
  // pattern tier on and off.
  const char* rules = R"(
    sel(a, 1).
    sel(a, 2).
    sel(b, 10) :- true.
    sel(C, V) :- C = c, V = 99.
  )";
  const char* queries[] = {"sel(a, V)", "sel(b, V)", "sel(c, V)",
                           "sel(W, V)", "sel(a, 2)", "sel(d, V)"};
  std::vector<uint64_t> counts[2];
  for (const bool cached : {false, true}) {
    Engine engine = MakePerCallEngine(cached);
    ASSERT_TRUE(engine.StoreRulesExternal(rules).ok());
    for (const char* q : queries) {
      for (int repeat = 0; repeat < 3; ++repeat) {
        auto count = engine.CountSolutions(q);
        ASSERT_TRUE(count.ok()) << q << ": " << count.status();
        counts[cached].push_back(*count);
      }
    }
    if (cached) {
      const EngineStats stats = engine.Stats();
      EXPECT_GT(stats.code_cache.pattern_hits + stats.code_cache.selection_hits,
                0u);
    }
  }
  EXPECT_EQ(counts[0], counts[1]);
}

TEST(LoaderCacheTest, TimeSplitCountersPopulate) {
  Engine engine = MakePerCallEngine(false);
  ASSERT_TRUE(engine.StoreFactsExternal(ChainFacts(12)).ok());
  ASSERT_TRUE(engine.StoreRulesExternal(kReachRules).ok());
  ASSERT_TRUE(engine.CountSolutions("reach(n0, X)").ok());
  const EngineStats stats = engine.Stats();
  // Decode and link attribute separately; the resolver's resolve_ns spans
  // both plus retrieval, so it must dominate either component.
  EXPECT_GT(stats.loader.decode_ns, 0u);
  EXPECT_GT(stats.loader.link_ns, 0u);
  EXPECT_GE(stats.resolver.resolve_ns,
            stats.loader.decode_ns + stats.loader.link_ns);
}

}  // namespace
}  // namespace educe
